//! A small generic JSON value model with a strict parser and a canonical
//! writer — the same hand-rolled discipline as the `hotnoc-bench-v2` report
//! schema (the container has no registry access, so `serde_json` is not
//! available).
//!
//! The writer is **canonical**: object fields serialize in insertion order,
//! numbers that are mathematically integers (and fit `i64`) print without a
//! fractional part, and everything else uses Rust's shortest-roundtrip `f64`
//! formatting. Canonical output is what makes campaign artifacts
//! byte-comparable across thread counts and across resume boundaries: a
//! value parsed back from a manifest re-serializes to exactly the bytes it
//! was written as.

use std::fmt;

/// A parsed JSON value. Objects preserve field order (insertion order on
/// construction, document order after parsing).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as an ordered field list (duplicate keys are rejected by
    /// the parser).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Convenience constructor for an integer value.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds 2^53 (not exactly representable as `f64`).
    pub fn int(n: u64) -> Json {
        assert!(n <= (1 << 53), "integer {n} exceeds exact f64 range");
        Json::Num(n as f64)
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) if v.is_finite() => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        (v >= 0.0 && v.fract() == 0.0 && v <= (1u64 << 53) as f64).then_some(v as u64)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Required-field accessors used by the spec/schema decoders: a missing
    /// or wrongly-typed field becomes a contextual error message.
    pub fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    /// Required string field.
    pub fn req_str(&self, key: &str) -> Result<&str, String> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| format!("field {key:?} is not a string"))
    }

    /// Required finite number field.
    pub fn req_f64(&self, key: &str) -> Result<f64, String> {
        self.req(key)?
            .as_f64()
            .ok_or_else(|| format!("field {key:?} is not a finite number"))
    }

    /// Required non-negative integer field.
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| format!("field {key:?} is not a non-negative integer"))
    }

    /// Required array field.
    pub fn req_array(&self, key: &str) -> Result<&[Json], String> {
        self.req(key)?
            .as_array()
            .ok_or_else(|| format!("field {key:?} is not an array"))
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax violation.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => out.push_str(&fmt_num(*v)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&esc(s));
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    out.push_str(&esc(k));
                    out.push_str("\": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Canonical number formatting: integers (within `i64`) print without a
/// fractional part, everything else uses Rust's shortest-roundtrip `{}`
/// formatting (parse-format stable, which resume byte-identity relies on).
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Maximum container nesting the parser accepts. Campaign documents nest a
/// handful of levels; the bound exists so hostile or garbage input fails
/// with a validation error instead of overflowing the stack (the parser
/// recurses per nesting level).
const MAX_DEPTH: usize = 128;

/// Minimal strict recursive-descent parser.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hi = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // UTF-16 surrogate pair (how standard
                                // encoders escape non-BMP characters): the
                                // low half must follow immediately.
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err("unpaired high surrogate in \\u escape".into());
                                }
                                let lo = self.hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate in \\u escape".into());
                                }
                                self.pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits starting at byte `at`, as a code unit.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_byte_stable() {
        let doc = Json::object(vec![
            ("name", Json::str("smoke")),
            ("seed", Json::int(42)),
            ("peak", Json::Num(85.44)),
            ("tiny", Json::Num(1.059e-6)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Array(vec![Json::int(1), Json::Num(-2.5), Json::str("a\"b")]),
            ),
        ]);
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed, doc);
        // Canonical: a parsed document re-serializes to identical bytes.
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn float_formatting_roundtrips_exactly() {
        for v in [85.44, 1.0 / 3.0, 6.02e23, 1.059e-6, f64::MIN_POSITIVE] {
            let s = fmt_num(v);
            let back: f64 = s.parse().expect("parses");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s}");
        }
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // Standard encoders (e.g. Python's ensure_ascii) escape non-BMP
        // characters as UTF-16 surrogate pairs.
        let doc = Json::parse("{\"name\": \"\\ud83d\\ude00 sweep\"}").expect("parses");
        assert_eq!(doc.req_str("name").unwrap(), "\u{1F600} sweep");
        // Unpaired or malformed surrogates are rejected, not mangled.
        assert!(Json::parse("{\"a\": \"\\ud83d\"}").is_err());
        assert!(Json::parse("{\"a\": \"\\ud83d x\"}").is_err());
        assert!(Json::parse("{\"a\": \"\\ud83d\\u0041\"}").is_err());
        assert!(Json::parse("{\"a\": \"\\udc00\"}").is_err());
    }

    #[test]
    fn rejects_duplicate_keys_and_trailing_garbage() {
        assert!(Json::parse("{\"a\": 1, \"a\": 2}").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1, ]").is_err());
    }

    #[test]
    fn deep_nesting_fails_cleanly_instead_of_overflowing() {
        // Hostile/garbage input (e.g. 200k '[') must produce a validation
        // error, not a stack-overflow abort of the CLI.
        let deep = "[".repeat(200_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "got: {err}");
        // Reasonable nesting still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let doc = Json::parse("{\"s\": \"x\", \"n\": 3, \"a\": [1], \"b\": false}").unwrap();
        assert_eq!(doc.req_str("s").unwrap(), "x");
        assert_eq!(doc.req_u64("n").unwrap(), 3);
        assert_eq!(doc.req_array("a").unwrap().len(), 1);
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert!(doc.req_str("missing").is_err());
        assert!(doc.req_u64("s").is_err());
    }
}
