//! Reassembles the paper's exhibit tables from campaign results, so the
//! `report_*` binaries are thin wrappers over the engine: run (or resume) a
//! built-in campaign, then project its records onto the legacy
//! `hotnoc-core` table types for rendering.

use crate::outcome::ScenarioOutcome;
use crate::runner::JobRecord;
use crate::spec::{ChipKind, Policy};
use hotnoc_core::configs::ChipConfigId;
use hotnoc_core::experiment::{Fig1Row, Fig1Table, MigrationCostRow, PeriodRow, PeriodTable};
use hotnoc_reconfig::MigrationScheme;

/// The records of one chip configuration, in campaign order.
fn records_of(records: &[JobRecord], id: ChipConfigId) -> Vec<&JobRecord> {
    records
        .iter()
        .filter(|r| r.spec.chip == ChipKind::Config(id))
        .collect()
}

/// Rebuilds the Figure 1 table from a `fig1`-shaped campaign (every config
/// in [`ChipConfigId::ALL`] x every scheme in [`MigrationScheme::FIGURE1`],
/// cosim outcomes).
///
/// # Errors
///
/// Reports the first missing (config, scheme) cell or non-cosim outcome.
pub fn fig1_table(records: &[JobRecord]) -> Result<Fig1Table, String> {
    let mut rows = Vec::new();
    for id in ChipConfigId::ALL {
        let of_config = records_of(records, id);
        let mut results = Vec::new();
        for scheme in MigrationScheme::FIGURE1 {
            let rec = of_config
                .iter()
                .find(
                    |r| matches!(r.spec.policy, Policy::Periodic { scheme: s, .. } if s == scheme),
                )
                .ok_or_else(|| format!("no record for config {id}, scheme {scheme}"))?;
            let ScenarioOutcome::Cosim(m) = &rec.outcome else {
                return Err(format!("record {} is not a cosim outcome", rec.spec.name));
            };
            results.push(m.to_cosim_result(Some(scheme)));
        }
        rows.push(Fig1Row {
            config: id,
            base_peak: results[0].base_peak,
            results,
        });
    }
    Ok(Fig1Table { rows })
}

/// Rebuilds the §3 period-sweep table for one config and scheme from a
/// `period-sweep`-shaped campaign. Rows come out in campaign (axis) order.
///
/// # Errors
///
/// Reports a missing config or non-cosim outcomes.
pub fn period_table(
    records: &[JobRecord],
    id: ChipConfigId,
    scheme: MigrationScheme,
) -> Result<PeriodTable, String> {
    let mut rows = Vec::new();
    for rec in records_of(records, id) {
        let Policy::Periodic {
            scheme: s,
            period_blocks,
        } = rec.spec.policy
        else {
            continue;
        };
        if s != scheme {
            continue;
        }
        let ScenarioOutcome::Cosim(m) = &rec.outcome else {
            return Err(format!("record {} is not a cosim outcome", rec.spec.name));
        };
        rows.push(PeriodRow {
            period_blocks,
            period_us: m.period_seconds * 1e6,
            penalty_pct: m.throughput_penalty * 100.0,
            peak: m.peak,
            reduction: m.reduction,
        });
    }
    if rows.is_empty() {
        return Err(format!(
            "no periodic records for config {id} under {scheme}"
        ));
    }
    Ok(PeriodTable {
        config: id,
        scheme,
        rows,
    })
}

/// Rebuilds the §2.1–2.2 migration-cost table for one config from a
/// `migration-cost`-shaped campaign (plan-cost outcomes), in
/// [`MigrationScheme::FIGURE1`] order.
///
/// # Errors
///
/// Reports the first missing scheme or non-plan-cost outcome.
pub fn migration_cost_rows(
    records: &[JobRecord],
    id: ChipConfigId,
) -> Result<Vec<MigrationCostRow>, String> {
    let of_config = records_of(records, id);
    let mut rows = Vec::new();
    for scheme in MigrationScheme::FIGURE1 {
        let rec = of_config
            .iter()
            .find(|r| matches!(r.spec.policy, Policy::Periodic { scheme: s, .. } if s == scheme))
            .ok_or_else(|| format!("no record for config {id}, scheme {scheme}"))?;
        let ScenarioOutcome::PlanCost(m) = &rec.outcome else {
            return Err(format!(
                "record {} is not a plan-cost outcome",
                rec.spec.name
            ));
        };
        rows.push(MigrationCostRow {
            scheme,
            phases: m.phases as usize,
            stall_us: m.stall_us,
            flit_hops: m.flit_hops,
            energy_uj: m.energy_uj,
            moves: m.moves as usize,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::builtin;
    use crate::runner::{run_campaign, RunnerOptions};
    use hotnoc_core::configs::Fidelity;
    use hotnoc_core::cosim::CosimParams;
    use hotnoc_core::experiment::run_migration_cost;

    #[test]
    fn migration_cost_campaign_matches_the_direct_experiment() {
        let dir = std::env::temp_dir().join(format!("hotnoc-exhibit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = builtin("migration-cost", Fidelity::Quick).unwrap();
        let run = run_campaign(
            &spec,
            &RunnerOptions {
                threads: 2,
                out_dir: dir.clone(),
                ..RunnerOptions::default()
            },
        )
        .expect("campaign runs");
        for id in [ChipConfigId::A, ChipConfigId::E] {
            let via_engine = migration_cost_rows(&run.completed, id).expect("rows");
            let direct =
                run_migration_cost(id, Fidelity::Quick, &CosimParams::quick()).expect("direct");
            assert_eq!(via_engine.len(), direct.len());
            for (a, b) in via_engine.iter().zip(&direct) {
                assert_eq!(a.scheme, b.scheme);
                assert_eq!(a.phases, b.phases);
                assert_eq!(a.flit_hops, b.flit_hops);
                assert_eq!(a.moves, b.moves);
                assert!((a.stall_us - b.stall_us).abs() < 1e-9);
                assert!((a.energy_uj - b.energy_uj).abs() < 1e-9);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
