//! Reassembles the paper's exhibit tables from campaign results, so the
//! `report_*` binaries are thin wrappers over the engine: run (or resume) a
//! built-in campaign, then project its records onto the legacy
//! `hotnoc-core` table types for rendering.

use crate::outcome::ScenarioOutcome;
use crate::runner::JobRecord;
use crate::spec::{ChipKind, Policy, Workload};
use crate::stats::{GroupKey, SummaryStats};
use hotnoc_core::configs::ChipConfigId;
use hotnoc_core::experiment::{Fig1Row, Fig1Table, MigrationCostRow, PeriodRow, PeriodTable};
use hotnoc_reconfig::MigrationScheme;
use std::fmt::Write as _;

/// The records of one chip configuration, in campaign order.
fn records_of(records: &[JobRecord], id: ChipConfigId) -> Vec<&JobRecord> {
    records
        .iter()
        .filter(|r| r.spec.chip == ChipKind::Config(id))
        .collect()
}

/// Rebuilds the Figure 1 table from a `fig1`-shaped campaign (every config
/// in [`ChipConfigId::ALL`] x every scheme in [`MigrationScheme::FIGURE1`],
/// cosim outcomes).
///
/// # Errors
///
/// Reports the first missing (config, scheme) cell or non-cosim outcome.
pub fn fig1_table(records: &[JobRecord]) -> Result<Fig1Table, String> {
    let mut rows = Vec::new();
    for id in ChipConfigId::ALL {
        let of_config = records_of(records, id);
        let mut results = Vec::new();
        for scheme in MigrationScheme::FIGURE1 {
            let rec = of_config
                .iter()
                .find(
                    |r| matches!(r.spec.policy, Policy::Periodic { scheme: s, .. } if s == scheme),
                )
                .ok_or_else(|| format!("no record for config {id}, scheme {scheme}"))?;
            let ScenarioOutcome::Cosim(m) = &rec.outcome else {
                return Err(format!("record {} is not a cosim outcome", rec.spec.name));
            };
            results.push(m.to_cosim_result(Some(scheme)));
        }
        rows.push(Fig1Row {
            config: id,
            base_peak: results[0].base_peak,
            results,
        });
    }
    Ok(Fig1Table { rows })
}

/// Rebuilds the §3 period-sweep table for one config and scheme from a
/// `period-sweep`-shaped campaign. Rows come out in campaign (axis) order.
///
/// # Errors
///
/// Reports a missing config or non-cosim outcomes.
pub fn period_table(
    records: &[JobRecord],
    id: ChipConfigId,
    scheme: MigrationScheme,
) -> Result<PeriodTable, String> {
    let mut rows = Vec::new();
    for rec in records_of(records, id) {
        let Policy::Periodic {
            scheme: s,
            period_blocks,
        } = rec.spec.policy
        else {
            continue;
        };
        if s != scheme {
            continue;
        }
        let ScenarioOutcome::Cosim(m) = &rec.outcome else {
            return Err(format!("record {} is not a cosim outcome", rec.spec.name));
        };
        rows.push(PeriodRow {
            period_blocks,
            period_us: m.period_seconds * 1e6,
            penalty_pct: m.throughput_penalty * 100.0,
            peak: m.peak,
            reduction: m.reduction,
        });
    }
    if rows.is_empty() {
        return Err(format!(
            "no periodic records for config {id} under {scheme}"
        ));
    }
    Ok(PeriodTable {
        config: id,
        scheme,
        rows,
    })
}

/// Rebuilds the §2.1–2.2 migration-cost table for one config from a
/// `migration-cost`-shaped campaign (plan-cost outcomes), in
/// [`MigrationScheme::FIGURE1`] order.
///
/// # Errors
///
/// Reports the first missing scheme or non-plan-cost outcome.
pub fn migration_cost_rows(
    records: &[JobRecord],
    id: ChipConfigId,
) -> Result<Vec<MigrationCostRow>, String> {
    let of_config = records_of(records, id);
    let mut rows = Vec::new();
    for scheme in MigrationScheme::FIGURE1 {
        let rec = of_config
            .iter()
            .find(|r| matches!(r.spec.policy, Policy::Periodic { scheme: s, .. } if s == scheme))
            .ok_or_else(|| format!("no record for config {id}, scheme {scheme}"))?;
        let ScenarioOutcome::PlanCost(m) = &rec.outcome else {
            return Err(format!(
                "record {} is not a plan-cost outcome",
                rec.spec.name
            ));
        };
        rows.push(MigrationCostRow {
            scheme,
            phases: m.phases as usize,
            stall_us: m.stall_us,
            flit_hops: m.flit_hops,
            energy_uj: m.energy_uj,
            moves: m.moves as usize,
        });
    }
    Ok(rows)
}

/// One operating point of a latency-vs-load saturation curve, aggregated
/// across the seed axis.
#[derive(Debug, Clone)]
pub struct LatencyLoadPoint {
    /// Offered load (packets per node per cycle).
    pub offered_load: f64,
    /// Seeds aggregated into this point.
    pub n: u64,
    /// Fraction of offered packets delivered (1.0 below saturation).
    pub delivered_frac: f64,
    /// Runs whose network drained within the post-run budget.
    pub drained: u64,
    /// Mean packet latency across seeds (summary over the per-run means).
    pub mean_latency: SummaryStats,
    /// Largest per-run p95 upper bound (histogram bucket edge), cycles.
    pub p95_upper: u64,
    /// Largest per-run maximum latency, cycles.
    pub max_latency: u64,
}

/// A latency-vs-load curve: one campaign group modulo the offered-load
/// tag, one point per load.
#[derive(Debug, Clone)]
pub struct LatencyLoadCurve {
    /// The curve's identity: the seed-stripped group key with the
    /// `@l<rate>` load tag removed (e.g. `"A/w0:traffic:uniform/baseline"`)
    /// — distinguishes workload-axis entries that share a pattern label
    /// but differ in packet length or cycle count.
    pub key: String,
    /// Chip label (`"A"`, `"custom6x6"`).
    pub chip: String,
    /// Workload label (`"traffic:uniform"`).
    pub workload: String,
    /// Operating points in ascending load order.
    pub points: Vec<LatencyLoadPoint>,
}

/// Extracts latency-vs-load curves from a campaign's traffic records: one
/// curve per load-stripped group, one point per offered load, seeds
/// collapsed. Campaigns without traffic records (or with a single
/// operating point per curve) still produce curves — rendering decides
/// what is worth showing.
pub fn latency_load_curves(records: &[JobRecord]) -> Vec<LatencyLoadCurve> {
    let mut curves: Vec<LatencyLoadCurve> = Vec::new();
    for rec in records {
        let (Workload::Traffic { rate, .. }, ScenarioOutcome::Traffic(m)) =
            (&rec.spec.workload, &rec.outcome)
        else {
            continue;
        };
        let key = GroupKey::of_name(&rec.spec.name)
            .as_str()
            .replacen(&format!("@l{rate}"), "", 1);
        let curve = match curves.iter_mut().find(|c| c.key == key) {
            Some(c) => c,
            None => {
                curves.push(LatencyLoadCurve {
                    key,
                    chip: rec.spec.chip.label(),
                    workload: rec.spec.workload.label(),
                    points: Vec::new(),
                });
                curves.last_mut().expect("just pushed")
            }
        };
        let point = match curve.points.iter_mut().find(|p| p.offered_load == *rate) {
            Some(p) => p,
            None => {
                curve.points.push(LatencyLoadPoint {
                    offered_load: *rate,
                    n: 0,
                    delivered_frac: 0.0,
                    drained: 0,
                    mean_latency: SummaryStats::new(),
                    p95_upper: 0,
                    max_latency: 0,
                });
                curve.points.last_mut().expect("just pushed")
            }
        };
        point.n += 1;
        // Running mean of the delivered fraction (each run weighs equally).
        let frac = if m.offered == 0 {
            1.0
        } else {
            m.delivered as f64 / m.offered as f64
        };
        point.delivered_frac += (frac - point.delivered_frac) / point.n as f64;
        point.drained += u64::from(m.drained);
        point.mean_latency.record(m.mean_latency_cycles);
        point.p95_upper = point.p95_upper.max(m.p95_latency_cycles);
        point.max_latency = point.max_latency.max(m.max_latency_cycles);
    }
    for curve in &mut curves {
        curve
            .points
            .sort_by(|a, b| a.offered_load.total_cmp(&b.offered_load));
    }
    curves
}

/// Renders latency-vs-load curves as deterministic text tables — the
/// saturation-curve exhibit a `latency-load` campaign produces. Curves
/// with fewer than two operating points are skipped (no curve to show);
/// returns `None` when nothing qualifies.
pub fn render_latency_load(curves: &[LatencyLoadCurve]) -> Option<String> {
    let mut s = String::new();
    for curve in curves.iter().filter(|c| c.points.len() >= 2) {
        let _ = writeln!(
            s,
            "latency vs offered load — chip {}, {} ({}):",
            curve.chip, curve.workload, curve.key
        );
        let _ = writeln!(
            s,
            "{:>8}  {:>3}  {:>10}  {:>22}  {:>7}  {:>7}  drained",
            "load", "n", "delivered", "mean latency (cyc)", "p95 <=", "max"
        );
        for p in &curve.points {
            let mean = p.mean_latency.mean().unwrap_or(0.0);
            let ci = match p.mean_latency.ci95_half_width() {
                Some(hw) => format!("{mean:.2} ± {hw:.2}"),
                None => format!("{mean:.2}"),
            };
            let _ = writeln!(
                s,
                "{:>8}  {:>3}  {:>9.1}%  {:>22}  {:>7}  {:>7}  {}/{}",
                p.offered_load,
                p.n,
                p.delivered_frac * 100.0,
                ci,
                p.p95_upper,
                p.max_latency,
                p.drained,
                p.n
            );
        }
    }
    (!s.is_empty()).then_some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::builtin;
    use crate::runner::{run_campaign, RunnerOptions};
    use hotnoc_core::configs::Fidelity;
    use hotnoc_core::cosim::CosimParams;
    use hotnoc_core::experiment::run_migration_cost;

    #[test]
    fn latency_load_campaign_produces_a_monotone_saturation_curve() {
        let dir = std::env::temp_dir().join(format!("hotnoc-latload-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = builtin("latency-load", Fidelity::Quick).unwrap();
        let run = run_campaign(
            &spec,
            &RunnerOptions {
                threads: 2,
                out_dir: dir.clone(),
                ..RunnerOptions::default()
            },
        )
        .expect("campaign runs");
        let curves = latency_load_curves(&run.completed);
        assert_eq!(curves.len(), 1);
        let curve = &curves[0];
        assert_eq!(curve.chip, "A");
        assert_eq!(curve.points.len(), spec.offered_loads.len());
        for (p, &load) in curve.points.iter().zip(&spec.offered_loads) {
            assert_eq!(p.offered_load, load);
            assert_eq!(p.n, spec.seeds.len() as u64);
            assert!(p.mean_latency.mean().unwrap() > 0.0);
        }
        // Latency cannot improve as offered load grows (the defining shape
        // of a saturation curve, with slack for sub-saturation noise).
        let first = curve.points.first().unwrap().mean_latency.mean().unwrap();
        let last = curve.points.last().unwrap().mean_latency.mean().unwrap();
        assert!(
            last >= first * 0.95,
            "latency fell with load: {first:.2} -> {last:.2}"
        );
        let table = render_latency_load(&curves).expect("2+ points");
        assert!(table.contains("latency vs offered load"), "{table}");
        assert!(table.contains("0.02"), "{table}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migration_cost_campaign_matches_the_direct_experiment() {
        let dir = std::env::temp_dir().join(format!("hotnoc-exhibit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = builtin("migration-cost", Fidelity::Quick).unwrap();
        let run = run_campaign(
            &spec,
            &RunnerOptions {
                threads: 2,
                out_dir: dir.clone(),
                ..RunnerOptions::default()
            },
        )
        .expect("campaign runs");
        for id in [ChipConfigId::A, ChipConfigId::E] {
            let via_engine = migration_cost_rows(&run.completed, id).expect("rows");
            let direct =
                run_migration_cost(id, Fidelity::Quick, &CosimParams::quick()).expect("direct");
            assert_eq!(via_engine.len(), direct.len());
            for (a, b) in via_engine.iter().zip(&direct) {
                assert_eq!(a.scheme, b.scheme);
                assert_eq!(a.phases, b.phases);
                assert_eq!(a.flit_hops, b.flit_hops);
                assert_eq!(a.moves, b.moves);
                assert!((a.stall_us - b.stall_us).abs() < 1e-9);
                assert!((a.energy_uj - b.energy_uj).abs() < 1e-9);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
