//! Campaign-level determinism guarantees:
//!
//! 1. The same `CampaignSpec` + seed produces a **byte-identical**
//!    `CAMPAIGN_<name>.json` at thread counts 1 and 4 (workers race for
//!    jobs, but results assemble by index).
//! 2. A resume from a **truncated manifest** — simulating a campaign
//!    killed mid-write — completes to the same bytes as an uninterrupted
//!    run, without re-running the journaled jobs.
//!
//! The campaign is a 48-job traffic sweep (2 chips x 3 patterns x 8
//! seeds), cheap enough for debug-profile CI while still exercising the
//! parallel pull-queue with many more jobs than workers.

use hotnoc_core::configs::{ChipConfigId, Fidelity};
use hotnoc_noc::TrafficPattern;
use hotnoc_scenario::runner::{parse_campaign_document, run_campaign, RunnerOptions};
use hotnoc_scenario::{CampaignSpec, ChipKind, Mode, PolicyAxis, Workload};
use std::path::PathBuf;

fn forty_eight_jobs(name: &str) -> CampaignSpec {
    let traffic = |pattern: TrafficPattern, rate: f64| Workload::Traffic {
        pattern,
        rate,
        packet_len: 3,
        cycles: 250,
    };
    let spec = CampaignSpec {
        name: name.to_string(),
        seed: 2005,
        fidelity: Fidelity::Quick,
        mode: Mode::Cosim,
        sim_time_ms: None,
        configs: vec![
            ChipKind::Config(ChipConfigId::A),
            ChipKind::Config(ChipConfigId::C),
        ],
        workloads: vec![
            traffic(TrafficPattern::UniformRandom, 0.08),
            traffic(TrafficPattern::Transpose, 0.06),
            traffic(
                TrafficPattern::Hotspot {
                    nodes: vec![hotnoc_noc::Coord::new(1, 1)],
                    fraction: 0.4,
                },
                0.05,
            ),
        ],
        policies: vec![PolicyAxis::Baseline],
        schemes: vec![],
        periods: vec![],
        offered_loads: vec![],
        failed_routers: vec![],
        failed_links: vec![],
        seeds: (0..8).collect(),
    };
    assert_eq!(spec.expand().len(), 48, "test campaign must have 48 jobs");
    spec
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotnoc-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &std::path::Path, threads: usize) -> RunnerOptions {
    RunnerOptions {
        threads,
        out_dir: dir.to_path_buf(),
        max_jobs: None,
        fresh: false,
        progress: false,
        trace_dir: None,
    }
}

#[test]
fn campaign_json_is_byte_identical_across_thread_counts() {
    let spec = forty_eight_jobs("det48");
    let mut artifacts = Vec::new();
    for threads in [1usize, 4] {
        let dir = tmp_dir(&format!("t{threads}"));
        let run = run_campaign(&spec, &opts(&dir, threads)).expect("campaign runs");
        assert!(run.is_complete());
        assert_eq!(run.total_jobs, 48);
        let bytes = std::fs::read(run.json_path.as_ref().expect("artifact")).expect("readable");
        parse_campaign_document(std::str::from_utf8(&bytes).expect("utf8")).expect("validates");
        artifacts.push(bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(
        artifacts[0], artifacts[1],
        "CAMPAIGN_det48.json differs between 1 and 4 threads"
    );
}

#[test]
fn resume_from_truncated_manifest_matches_uninterrupted_run() {
    let spec = forty_eight_jobs("det48r");

    // Reference: uninterrupted single invocation.
    let ref_dir = tmp_dir("ref");
    let full = run_campaign(&spec, &opts(&ref_dir, 4)).expect("reference run");
    let reference = std::fs::read(full.json_path.as_ref().unwrap()).unwrap();

    // Interrupted: run everything, then truncate the journal mid-line as a
    // kill at an arbitrary byte boundary would.
    let dir = tmp_dir("truncated");
    let first = run_campaign(&spec, &opts(&dir, 4)).expect("first run");
    let manifest = first.manifest_path.clone();
    let text = std::fs::read_to_string(&manifest).unwrap();
    let keep_lines = 30; // header + 29 completed jobs
    let kept: String = text
        .lines()
        .take(keep_lines)
        .map(|l| format!("{l}\n"))
        .collect();
    // Cut into the middle of the next journal line: the resume must ignore
    // the torn record and recompute that job.
    let torn = text.lines().nth(keep_lines).expect("more lines exist");
    let partial = format!("{kept}{}", &torn[..torn.len() / 2]);
    std::fs::write(&manifest, partial).unwrap();
    // Also remove the stale artifact so completeness is re-proven.
    let _ = std::fs::remove_file(dir.join("CAMPAIGN_det48r.json"));

    let resumed = run_campaign(&spec, &opts(&dir, 2)).expect("resume");
    assert!(resumed.is_complete());
    assert_eq!(
        resumed.resumed_jobs, 29,
        "exactly the intact journal lines should be recovered"
    );
    assert_eq!(resumed.executed_jobs, 48 - 29);
    let resumed_bytes = std::fs::read(resumed.json_path.as_ref().unwrap()).unwrap();
    assert_eq!(
        resumed_bytes, reference,
        "resume from a truncated manifest diverged from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn latency_load_builtin_is_byte_identical_across_threads_and_resume() {
    // The saturation-curve campaign sweeps the offered-load axis; its
    // CAMPAIGN json *and* its seed-axis aggregate artifact
    // (hotnoc-campaign-aggregate-v1) must come out byte-identical at
    // HOTNOC_THREADS in {1, 4} and across a kill/resume boundary.
    let spec =
        hotnoc_scenario::builtin::builtin("latency-load", Fidelity::Quick).expect("known builtin");

    let mut artifacts: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for threads in [1usize, 4] {
        let dir = tmp_dir(&format!("latload-t{threads}"));
        let run = run_campaign(&spec, &opts(&dir, threads)).expect("campaign runs");
        assert!(run.is_complete());
        let campaign = std::fs::read(run.json_path.as_ref().expect("artifact")).unwrap();
        parse_campaign_document(std::str::from_utf8(&campaign).expect("utf8")).expect("validates");
        let aggregate =
            std::fs::read(run.aggregate_path.as_ref().expect("aggregate artifact")).unwrap();
        assert!(std::str::from_utf8(&aggregate)
            .expect("utf8")
            .contains("hotnoc-campaign-aggregate-v1"));
        artifacts.push((campaign, aggregate));
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(
        artifacts[0].0, artifacts[1].0,
        "CAMPAIGN_latency-load.json differs between 1 and 4 threads"
    );
    assert_eq!(
        artifacts[0].1, artifacts[1].1,
        "aggregate artifact differs between 1 and 4 threads"
    );

    // Kill after 5 jobs at t4, resume at t1: same bytes as uninterrupted.
    let dir = tmp_dir("latload-resume");
    let partial = run_campaign(
        &spec,
        &RunnerOptions {
            max_jobs: Some(5),
            ..opts(&dir, 4)
        },
    )
    .expect("partial run");
    assert!(!partial.is_complete());
    assert!(
        partial.aggregate_path.is_none(),
        "no aggregate while partial"
    );
    let resumed = run_campaign(&spec, &opts(&dir, 1)).expect("resume");
    assert!(resumed.is_complete());
    assert_eq!(resumed.resumed_jobs, 5);
    assert_eq!(
        std::fs::read(resumed.json_path.as_ref().unwrap()).unwrap(),
        artifacts[0].0,
        "resumed latency-load artifact diverged"
    );
    assert_eq!(
        std::fs::read(resumed.aggregate_path.as_ref().unwrap()).unwrap(),
        artifacts[0].1,
        "resumed latency-load aggregate diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_mesh_builtin_is_byte_identical_across_threads_and_resume() {
    // The fault-axis campaign runs the same traffic with 0/1/2 routers
    // failed at cycle 0; surround routing and drop accounting must stay as
    // deterministic as the healthy path, so the CAMPAIGN json and the
    // aggregate artifact come out byte-identical at 1 and 4 threads and
    // across a kill/resume boundary.
    let spec =
        hotnoc_scenario::builtin::builtin("degraded-mesh", Fidelity::Quick).expect("known builtin");

    let mut artifacts: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for threads in [1usize, 4] {
        let dir = tmp_dir(&format!("degraded-t{threads}"));
        let run = run_campaign(&spec, &opts(&dir, threads)).expect("campaign runs");
        assert!(run.is_complete());
        assert_eq!(run.total_jobs, 12);
        let campaign = std::fs::read(run.json_path.as_ref().expect("artifact")).unwrap();
        parse_campaign_document(std::str::from_utf8(&campaign).expect("utf8")).expect("validates");
        let aggregate =
            std::fs::read(run.aggregate_path.as_ref().expect("aggregate artifact")).unwrap();
        artifacts.push((campaign, aggregate));
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(
        artifacts[0].0, artifacts[1].0,
        "CAMPAIGN_degraded-mesh.json differs between 1 and 4 threads"
    );
    assert_eq!(
        artifacts[0].1, artifacts[1].1,
        "degraded-mesh aggregate differs between 1 and 4 threads"
    );
    // Degraded jobs really did drop or detour traffic (the axis is live).
    let text = std::str::from_utf8(&artifacts[0].0).unwrap();
    assert!(text.contains("/fr2/"), "fault tag missing from job names");
    assert!(
        text.contains("packets_dropped") || text.contains("detour_hops"),
        "no fault counters in any degraded outcome"
    );

    // Kill after 4 jobs at t4, resume at t1: same bytes as uninterrupted.
    let dir = tmp_dir("degraded-resume");
    let partial = run_campaign(
        &spec,
        &RunnerOptions {
            max_jobs: Some(4),
            ..opts(&dir, 4)
        },
    )
    .expect("partial run");
    assert!(!partial.is_complete());
    let resumed = run_campaign(&spec, &opts(&dir, 1)).expect("resume");
    assert!(resumed.is_complete());
    assert_eq!(resumed.resumed_jobs, 4);
    assert_eq!(
        std::fs::read(resumed.json_path.as_ref().unwrap()).unwrap(),
        artifacts[0].0,
        "resumed degraded-mesh artifact diverged"
    );
    assert_eq!(
        std::fs::read(resumed.aggregate_path.as_ref().unwrap()).unwrap(),
        artifacts[0].1,
        "resumed degraded-mesh aggregate diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn max_jobs_interrupt_then_resume_is_lossless() {
    let spec = forty_eight_jobs("det48m");
    let dir = tmp_dir("maxjobs");
    // Three partial invocations at different thread counts, then completion.
    for (threads, cap) in [(1usize, 10usize), (4, 10), (2, 10)] {
        let run = run_campaign(
            &spec,
            &RunnerOptions {
                max_jobs: Some(cap),
                ..opts(&dir, threads)
            },
        )
        .expect("partial run");
        assert!(!run.is_complete());
    }
    let finished = run_campaign(&spec, &opts(&dir, 4)).expect("final run");
    assert!(finished.is_complete());
    assert_eq!(finished.resumed_jobs, 30);
    assert_eq!(finished.executed_jobs, 18);

    let ref_dir = tmp_dir("maxjobs-ref");
    let reference = run_campaign(&spec, &opts(&ref_dir, 1)).expect("reference");
    assert_eq!(
        std::fs::read(finished.json_path.as_ref().unwrap()).unwrap(),
        std::fs::read(reference.json_path.as_ref().unwrap()).unwrap(),
        "chunked execution diverged from a single-shot run"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}
