//! Property battery for [`hotnoc_scenario::shard`] striping — the
//! invariants distributed campaigns rest on:
//!
//! * for any shard count n ∈ 1..=8, the stripes **partition** the
//!   expanded job list exactly: pairwise disjoint, complete cover, and
//!   order-preserving (each stripe ascends, and stripe membership is the
//!   index modulo n);
//! * **per-job seeds are shard-invariant**: every job a shard owns
//!   carries exactly the seed the unsharded expansion derives for that
//!   index ([`derive_job_seed`] over the campaign seed, the job's
//!   seed-axis value and its global index), so a sharded sweep simulates
//!   bit-identical scenarios.

use hotnoc_core::configs::{ChipConfigId, Fidelity};
use hotnoc_noc::TrafficPattern;
use hotnoc_scenario::campaign::{derive_job_seed, PolicyAxis};
use hotnoc_scenario::shard::Shard;
use hotnoc_scenario::spec::{ChipKind, Mode, Workload};
use hotnoc_scenario::CampaignSpec;
use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary small campaigns: 1–2 chip configs, 1–3 traffic workloads,
/// 1–4 seed-axis values — expansions of 1..=24 jobs.
fn campaigns() -> impl Strategy<Value = CampaignSpec> {
    let patterns = prop_oneof![
        Just(TrafficPattern::UniformRandom),
        Just(TrafficPattern::Transpose),
        Just(TrafficPattern::Tornado),
    ];
    (
        0u64..u64::MAX,
        1usize..3,
        vec(patterns, 1..4),
        vec(0u64..1000, 1..5),
    )
        .prop_map(|(seed, configs, patterns, seeds)| CampaignSpec {
            name: "prop-shard".to_string(),
            seed,
            fidelity: Fidelity::Quick,
            mode: Mode::Cosim,
            sim_time_ms: None,
            configs: [ChipConfigId::A, ChipConfigId::B][..configs]
                .iter()
                .map(|&c| ChipKind::Config(c))
                .collect(),
            workloads: patterns
                .into_iter()
                .map(|pattern| Workload::Traffic {
                    pattern,
                    rate: 0.05,
                    packet_len: 2,
                    cycles: 100,
                })
                .collect(),
            policies: vec![PolicyAxis::Baseline],
            schemes: vec![],
            periods: vec![],
            offered_loads: vec![],
            failed_routers: vec![],
            failed_links: vec![],
            seeds,
        })
}

/// The job's seed-axis value, recovered from the expansion structure:
/// the seed axis is the innermost loop, so job `i` uses `seeds[i % k]`.
fn axis_seed(spec: &CampaignSpec, index: usize) -> u64 {
    spec.seeds[index % spec.seeds.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The n stripes are pairwise disjoint, cover every job index, each
    /// ascend, and stripe i holds exactly the indices ≡ i (mod n).
    #[test]
    fn stripes_partition_the_expansion(spec in campaigns(), count in 1usize..9) {
        let jobs = spec.expand();
        let mut owner = vec![None::<usize>; jobs.len()];
        for index in 0..count {
            let stripe = Shard::new(index, count).unwrap().stripe(jobs.len());
            prop_assert!(stripe.windows(2).all(|w| w[0] < w[1]), "stripe must ascend");
            for &job in &stripe {
                prop_assert!(job < jobs.len());
                prop_assert_eq!(job % count, index, "modulo striping");
                prop_assert_eq!(owner[job], None, "stripes must be disjoint");
                owner[job] = Some(index);
            }
        }
        prop_assert!(owner.iter().all(Option::is_some), "stripes must cover");
    }

    /// Every job a shard owns is the *same job* the unsharded run would
    /// execute at that index: same spec, and in particular the same
    /// derived per-job seed.
    #[test]
    fn sharded_jobs_keep_unsharded_seeds(spec in campaigns(), count in 1usize..9) {
        let jobs = spec.expand();
        for index in 0..count {
            let stripe = Shard::new(index, count).unwrap().stripe(jobs.len());
            for &job in &stripe {
                let expect = derive_job_seed(spec.seed, axis_seed(&spec, job), job as u64);
                prop_assert_eq!(jobs[job].seed, expect, "job {} seed drifted", job);
            }
        }
    }
}
