//! Property battery for [`hotnoc_scenario::stats::SummaryStats`] — the
//! invariants the campaign analytics layer's determinism rests on:
//!
//! * **merge is exactly commutative and associative**, and chunked
//!   accumulation equals whole accumulation bit-for-bit (the summary is a
//!   pure function of the sample multiset);
//! * the **95% CI shrinks** as the sample count grows (more seeds = a
//!   tighter interval);
//! * **quantiles are sandwiched** by adjacent order statistics and are
//!   monotone in `q`.

use hotnoc_scenario::stats::{t_critical_95, SummaryStats};
use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary finite samples over a wide dynamic range (latencies in
/// cycles, temperatures in °C, energies in joules all flow through the
/// same summaries).
fn samples(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    vec(-1.0e6f64..1.0e6, min_len..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `merge(a, b) == merge(b, a)`, exactly — including every derived
    /// statistic.
    #[test]
    fn merge_is_commutative(xs in samples(0), ys in samples(0)) {
        let (a, b) = (SummaryStats::of(&xs), SummaryStats::of(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.mean(), ba.mean());
        prop_assert_eq!(ab.std_dev(), ba.std_dev());
        prop_assert_eq!(ab.median(), ba.median());
        prop_assert_eq!(ab.ci95(), ba.ci95());
    }

    /// Chunked accumulation equals whole accumulation bit-for-bit,
    /// whatever the chunk boundary — and a three-way split brackets
    /// associativity: `(a + b) + c == a + (b + c)`.
    #[test]
    fn chunked_equals_whole(xs in samples(0), cut_a in 0usize..24, cut_b in 0usize..24) {
        let whole = SummaryStats::of(&xs);
        let cut = cut_a.min(xs.len());
        let mut merged = SummaryStats::of(&xs[..cut]);
        merged.merge(&SummaryStats::of(&xs[cut..]));
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.mean(), whole.mean());
        prop_assert_eq!(merged.std_dev(), whole.std_dev());
        prop_assert_eq!(merged.quantile(0.95), whole.quantile(0.95));

        let (lo, hi) = (cut_a.min(cut_b).min(xs.len()), cut_a.max(cut_b).min(xs.len()));
        let (a, b, c) = (
            SummaryStats::of(&xs[..lo]),
            SummaryStats::of(&xs[lo..hi]),
            SummaryStats::of(&xs[hi..]),
        );
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &whole);
    }

    /// Recording the same samples in any order yields the same summary.
    #[test]
    fn recording_order_is_irrelevant(xs in samples(2), rotation in 0usize..24) {
        let forward = SummaryStats::of(&xs);
        let mut reversed: Vec<f64> = xs.clone();
        reversed.reverse();
        prop_assert_eq!(&SummaryStats::of(&reversed), &forward);
        let k = rotation % xs.len();
        let mut rotated = xs[k..].to_vec();
        rotated.extend_from_slice(&xs[..k]);
        prop_assert_eq!(&SummaryStats::of(&rotated), &forward);
    }

    /// More samples from the same spread = a strictly tighter 95% CI:
    /// repeating the sample set m times keeps the mean and (almost) the
    /// spread while growing n, so the half-width must fall.
    #[test]
    fn ci_shrinks_with_n(xs in samples(2), m in 2usize..6) {
        // Guarantee non-zero spread, else both half-widths are 0.
        let mut xs = xs;
        xs.push(xs[0] + 1.0);
        let small = SummaryStats::of(&xs);
        let mut repeated = Vec::with_capacity(xs.len() * m);
        for _ in 0..m {
            repeated.extend_from_slice(&xs);
        }
        let big = SummaryStats::of(&repeated);
        let (hw_small, hw_big) = (
            small.ci95_half_width().expect("n >= 2"),
            big.ci95_half_width().expect("n >= 2"),
        );
        prop_assert!(
            hw_big < hw_small,
            "CI failed to shrink: n={} hw={hw_small} vs n={} hw={hw_big}",
            small.count(),
            big.count()
        );
        // The interval always contains the mean.
        let (lo, hi) = big.ci95().expect("n >= 2");
        let mean = big.mean().expect("non-empty");
        prop_assert!(lo <= mean && mean <= hi);
    }

    /// Every quantile is sandwiched by the adjacent order statistics of
    /// the sorted sample set (and hence by min/max), and quantiles are
    /// monotone non-decreasing in `q`.
    #[test]
    fn quantile_sandwich_and_monotonicity(xs in samples(1), q in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let s = SummaryStats::of(&xs);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();

        let v = s.quantile(q).expect("non-empty");
        let h = q * (n - 1) as f64;
        let (lo, hi) = (sorted[h.floor() as usize], sorted[h.ceil() as usize]);
        prop_assert!(lo <= v && v <= hi, "quantile({q}) = {v} outside [{lo}, {hi}]");
        prop_assert!(s.min().unwrap() <= v && v <= s.max().unwrap());

        let (qa, qb) = (q.min(q2), q.max(q2));
        prop_assert!(s.quantile(qa).unwrap() <= s.quantile(qb).unwrap());
        // Exact order statistics at the endpoints and the median contract.
        prop_assert_eq!(s.quantile(0.0), s.min());
        prop_assert_eq!(s.quantile(1.0), s.max());
        prop_assert!(s.median().unwrap() <= s.p95().unwrap());
    }

    /// Mean and standard deviation agree with direct two-pass reference
    /// computation (up to float tolerance — the implementation fixes the
    /// summation order, the reference does not).
    #[test]
    fn mean_and_std_match_reference(xs in samples(2)) {
        let s = SummaryStats::of(&xs);
        let n = xs.len() as f64;
        let mean_ref: f64 = xs.iter().sum::<f64>() / n;
        let var_ref: f64 =
            xs.iter().map(|&x| (x - mean_ref) * (x - mean_ref)).sum::<f64>() / (n - 1.0);
        let mean = s.mean().expect("non-empty");
        let sd = s.std_dev().expect("n >= 2");
        prop_assert!((mean - mean_ref).abs() <= 1e-9 * (1.0 + mean_ref.abs()));
        prop_assert!((sd - var_ref.sqrt()).abs() <= 1e-6 * (1.0 + var_ref.sqrt()));
        // And the CI is exactly t * s / sqrt(n) around that mean.
        let hw = s.ci95_half_width().expect("n >= 2");
        let expected = t_critical_95(xs.len() as u64 - 1) * sd / n.sqrt();
        prop_assert_eq!(hw, expected);
    }
}
