//! `hotnoc` — the command-line front end of the scenario & campaign engine.
//!
//! ```text
//! hotnoc campaign run (--builtin NAME | --spec FILE) [--shard I/N] [options]
//! hotnoc campaign merge SHARD.json... [--out-dir DIR]
//! hotnoc campaign list
//! hotnoc campaign expand (--builtin NAME | --spec FILE) [--quick]
//! hotnoc campaign check FILE...
//! hotnoc campaign diff A.json B.json [options]
//! hotnoc scenario run --spec FILE [--trace FILE] [--profile FILE]
//! hotnoc trace summary FILE
//! hotnoc trace export --chrome FILE [--out FILE]
//! hotnoc serve (--socket PATH | --tcp ADDR:PORT) [options]
//! hotnoc serve --shutdown (--socket PATH | --tcp ADDR:PORT)
//! hotnoc submit SPEC.json (--socket PATH | --tcp ADDR:PORT) [--id ID]
//! ```
//!
//! The full contract (every flag, every exit code, artifact schemas) is
//! documented in `docs/CLI.md` and `docs/ARTIFACTS.md`.
//!
//! Exit codes: 0 = success (a partial `--max-jobs` run that stopped on
//! schedule is a success; a diff without `--fail-on-regression` is a
//! success whatever it finds). 1 = runtime failure (job failed, write
//! failed), a `check` cross-validation failure, or a gated `diff`
//! regression. 2 = usage error or bad input (unreadable file, not JSON,
//! missing/unknown `schema` tag, a scenario spec that fails validation —
//! e.g. a fault event naming a router outside the mesh); for `diff` and
//! `merge`, *any* unusable artifact — including one that fails
//! cross-validation, or an incomplete/duplicated/mismatched shard set —
//! is bad input (exit 2), mirroring `bench_regress`, so exit 1 from
//! `diff` always means "a regression was detected" and exit 1 from
//! `merge` always means "the merged artifacts could not be written".

use hotnoc_core::configs::Fidelity;
use hotnoc_scenario::builtin::{builtin, BUILTINS};
use hotnoc_scenario::exhibits::{latency_load_curves, render_latency_load};
use hotnoc_scenario::json::Json;
use hotnoc_scenario::runner::{
    campaign_json, run_campaign, summary_table, validate_campaign_json, CampaignDoc, RunnerOptions,
    CAMPAIGN_SCHEMA,
};
use hotnoc_scenario::shard::{
    merge_shards, run_campaign_shard, shard_summary, validate_shard_json, Shard, ShardDoc,
    SHARD_SCHEMA,
};
use hotnoc_scenario::stats::{aggregate, aggregate_json};
use hotnoc_scenario::tracefile::{profile_json, TraceDoc};
use hotnoc_scenario::{diff_campaigns, run_scenario_traced, CampaignSpec, ScenarioSpec};
use hotnoc_serve::Endpoint;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
hotnoc — scenario & campaign engine for the DATE'05 NoC reproduction

USAGE:
    hotnoc campaign run (--builtin NAME | --spec FILE)
                        [--shard I/N] [--out-dir DIR] [--threads N]
                        [--max-jobs N] [--fresh] [--quick] [--quiet]
                        [--trace-dir DIR]
    hotnoc campaign merge SHARD.json... [--out-dir DIR]
    hotnoc campaign list
    hotnoc campaign expand (--builtin NAME | --spec FILE) [--quick]
    hotnoc campaign check FILE...
    hotnoc campaign diff A.json B.json [--threshold-pct N]
                        [--fail-on-regression]
    hotnoc scenario run --spec FILE [--trace FILE] [--profile FILE]
    hotnoc trace summary FILE
    hotnoc trace export --chrome FILE [--out FILE]
    hotnoc serve (--socket PATH | --tcp ADDR:PORT) [--journal FILE]
                 [--trace FILE] [--threads N] [--spool DIR]
    hotnoc serve --shutdown (--socket PATH | --tcp ADDR:PORT)
    hotnoc submit SPEC.json (--socket PATH | --tcp ADDR:PORT) [--id ID]

OPTIONS:
    --builtin NAME   a built-in campaign (see `hotnoc campaign list`)
    --spec FILE      a JSON spec file (campaign or scenario)
    --shard I/N      run only stripe I of N (jobs with index ≡ I mod N);
                     emits a shard artifact for `campaign merge`
    --out-dir DIR    artifact directory (default .)
    --threads N      worker threads (default HOTNOC_THREADS / parallelism)
    --max-jobs N     stop after N new jobs (the campaign stays resumable)
    --fresh          ignore an existing manifest instead of resuming
    --quick          run built-ins at quick fidelity (seconds, not minutes);
                     spec files set their own \"fidelity\" instead
    --quiet          suppress per-job progress lines and the heartbeat
    --trace-dir DIR  write one hotnoc-trace-v1 event trace per job
                     (TRACE_<campaign>.job<index>.jsonl, byte-deterministic)
    --trace FILE     write the scenario's hotnoc-trace-v1 event trace
    --profile FILE   write a hotnoc-profile-v1 timing sidecar (wall-clock;
                     NOT deterministic — never diff it byte-for-byte)

TRACE SUBCOMMAND (consumes hotnoc-trace-v1 files):
    summary FILE           per-kind event counts and top congestion windows
    export --chrome FILE   convert to Chrome trace-event JSON (load in
                           Perfetto / chrome://tracing); --out FILE writes
                           to a file instead of stdout

SERVE / SUBMIT (the long-running submission daemon; see docs/SERVING.md):
    --socket PATH    listen on (connect to) a unix-domain socket
    --tcp ADDR:PORT  listen on (connect to) a TCP address instead
    --journal FILE   persist computed results (hotnoc-serve-journal-v1);
                     warm-loaded into the cache on the next start
    --trace FILE     [serve] write the hotnoc-trace-v1 serving trace
                     (cache-hit events) on shutdown
    --spool DIR      campaign working state (default hotnoc-serve-spool)
    --shutdown       ask a running daemon to drain gracefully and exit
    --id ID          [submit] request id echoed on every response line
                     (default: the spec's fingerprint)

DIFF OPTIONS (campaign B is compared against the A baseline):
    --threshold-pct N      regression threshold in percent (default 15):
                           the gate trips when the median worsening ratio
                           over aligned groups exceeds 1 + N/100
    --fail-on-regression   exit 1 when the gate trips (otherwise the
                           verdict is informational and the exit is 0)

The full contract lives in docs/CLI.md; artifact schemas in
docs/ARTIFACTS.md; the fleet runbook in docs/OPERATIONS.md.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["campaign", "run", rest @ ..] => campaign_run(rest),
        ["campaign", "merge", rest @ ..] => campaign_merge(rest),
        ["campaign", "list"] => campaign_list(),
        ["campaign", "expand", rest @ ..] => campaign_expand(rest),
        ["campaign", "check", rest @ ..] if !rest.is_empty() => campaign_check(rest),
        ["campaign", "diff", rest @ ..] => campaign_diff(rest),
        ["scenario", "run", rest @ ..] => scenario_run(rest),
        ["trace", "summary", rest @ ..] => trace_summary(rest),
        ["trace", "export", rest @ ..] => trace_export(rest),
        ["serve", rest @ ..] => serve_cmd(rest),
        ["submit", rest @ ..] => submit_cmd(rest),
        ["help"] | ["--help"] | ["-h"] => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => usage_error("unrecognized command"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("hotnoc: {msg}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

/// Flag parser shared by the subcommands. Returns `(flags with values,
/// boolean switches)` or a usage message.
struct Flags {
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[&str], value_flags: &[&str], switch_flags: &[&str]) -> Result<Flags, String> {
        let mut values = Vec::new();
        let mut switches = Vec::new();
        let mut it = args.iter();
        while let Some(&flag) = it.next() {
            if value_flags.contains(&flag) {
                let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                values.push((flag.to_string(), (*v).to_string()));
            } else if switch_flags.contains(&flag) {
                switches.push(flag.to_string());
            } else {
                return Err(format!("unknown flag {flag:?}"));
            }
        }
        Ok(Flags { values, switches })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, flag: &str) -> bool {
        self.switches.iter().any(|f| f == flag)
    }
}

/// Loads the campaign named by `--builtin`/`--spec` (exactly one required).
fn load_campaign(flags: &Flags) -> Result<CampaignSpec, String> {
    let fidelity = if flags.has("--quick") {
        Fidelity::Quick
    } else {
        Fidelity::Full
    };
    match (flags.get("--builtin"), flags.get("--spec")) {
        (Some(name), None) => builtin(name, fidelity)
            .ok_or_else(|| format!("unknown builtin {name:?} (see `hotnoc campaign list`)")),
        (None, Some(path)) => {
            if flags.has("--quick") {
                return Err(
                    "--quick only applies to --builtin campaigns; spec files set their own \
                     \"fidelity\""
                        .to_string(),
                );
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            CampaignSpec::parse(&text).map_err(|e| format!("{path}: {e}"))
        }
        _ => Err("exactly one of --builtin / --spec is required".to_string()),
    }
}

fn campaign_run(args: &[&str]) -> ExitCode {
    let flags = match Flags::parse(
        args,
        &[
            "--builtin",
            "--spec",
            "--shard",
            "--out-dir",
            "--threads",
            "--max-jobs",
            "--trace-dir",
        ],
        &["--fresh", "--quick", "--quiet"],
    ) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let spec = match load_campaign(&flags) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    let shard = match flags.get("--shard").map(Shard::parse).transpose() {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    let parse_num = |flag: &str| -> Result<Option<usize>, String> {
        flags
            .get(flag)
            .map(|v| v.parse::<usize>().map_err(|e| format!("bad {flag}: {e}")))
            .transpose()
    };
    let (threads, max_jobs) = match (parse_num("--threads"), parse_num("--max-jobs")) {
        (Ok(t), Ok(m)) => (t, m),
        (Err(e), _) | (_, Err(e)) => return usage_error(&e),
    };
    let opts = RunnerOptions {
        threads: threads.unwrap_or_else(minipool::configured_threads).max(1),
        out_dir: PathBuf::from(flags.get("--out-dir").unwrap_or(".")),
        max_jobs,
        fresh: flags.has("--fresh"),
        progress: !flags.has("--quiet"),
        trace_dir: flags.get("--trace-dir").map(PathBuf::from),
    };
    if let Some(shard) = shard {
        return campaign_run_shard(&spec, shard, &opts);
    }
    eprintln!(
        "campaign {}: {} jobs on {} thread(s), artifacts in {}",
        spec.name,
        spec.expand().len(),
        opts.threads,
        opts.out_dir.display()
    );
    match run_campaign(&spec, &opts) {
        Ok(run) => {
            print!("{}", summary_table(&run));
            if run.resumed_jobs > 0 {
                println!("resumed {} job(s) from the manifest", run.resumed_jobs);
            }
            if run.is_complete() {
                // The saturation-curve exhibit, when the campaign swept an
                // offered-load axis.
                if let Some(table) = render_latency_load(&latency_load_curves(&run.completed)) {
                    print!("\n{table}");
                }
            }
            for path in [&run.json_path, &run.aggregate_path].into_iter().flatten() {
                println!("[saved {}]", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hotnoc: campaign {} failed: {e}", spec.name);
            ExitCode::FAILURE
        }
    }
}

/// The `--shard I/N` arm of `campaign run`: same engine, one stripe, its
/// own journal, a shard artifact instead of the campaign artifact.
fn campaign_run_shard(spec: &CampaignSpec, shard: Shard, opts: &RunnerOptions) -> ExitCode {
    eprintln!(
        "campaign {} shard {}: {} of {} jobs on {} thread(s), artifacts in {}",
        spec.name,
        shard,
        shard.stripe(spec.expand().len()).len(),
        spec.expand().len(),
        opts.threads,
        opts.out_dir.display()
    );
    match run_campaign_shard(spec, shard, opts) {
        Ok(run) => {
            print!("{}", shard_summary(&run));
            if run.resumed_jobs > 0 {
                println!("resumed {} job(s) from the manifest", run.resumed_jobs);
            }
            if let Some(path) = &run.json_path {
                println!("[saved {}]", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hotnoc: campaign {} shard {} failed: {e}", spec.name, shard);
            ExitCode::FAILURE
        }
    }
}

/// `campaign merge SHARD.json... [--out-dir DIR]`: validate the shard
/// set and reassemble the exact single-host campaign artifacts.
fn campaign_merge(args: &[&str]) -> ExitCode {
    let mut paths: Vec<&str> = Vec::new();
    let mut out_dir = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--out-dir" => {
                let Some(v) = it.next() else {
                    return usage_error("--out-dir needs a value");
                };
                out_dir = PathBuf::from(*v);
            }
            other if other.starts_with("--") => {
                return usage_error(&format!("unknown flag {other:?}"))
            }
            path => paths.push(path),
        }
    }
    if paths.is_empty() {
        return usage_error("campaign merge needs at least one shard artifact");
    }
    // Any unusable input — unreadable, not a shard artifact, failed
    // cross-validation — is bad input (exit 2) naming the file, matching
    // the diff convention.
    let mut docs: Vec<ShardDoc> = Vec::with_capacity(paths.len());
    for path in &paths {
        match load_artifact(path) {
            Ok(CheckedDoc::Shard(doc)) => docs.push(doc),
            Ok(CheckedDoc::Campaign(_)) => {
                eprintln!(
                    "hotnoc: {path}: is a whole-campaign artifact ({CAMPAIGN_SCHEMA:?}), \
                     not a shard — nothing to merge"
                );
                return ExitCode::from(2);
            }
            Err(LoadFailure::BadInput(e) | LoadFailure::Invalid(e)) => {
                eprintln!("hotnoc: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let merged = match merge_shards(docs) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("hotnoc: merge rejected: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("hotnoc: {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    println!(
        "merged {} shard(s) of campaign {}: {} jobs",
        paths.len(),
        merged.spec.name,
        merged.records.len()
    );
    let json_path = out_dir.join(format!("CAMPAIGN_{}.json", merged.spec.name));
    let aggregate_path = out_dir.join(format!("CAMPAIGN_{}.aggregate.json", merged.spec.name));
    let groups = aggregate(&merged.records);
    for (path, text) in [
        (&json_path, campaign_json(&merged.spec, &merged.records)),
        (&aggregate_path, aggregate_json(&merged.spec, &groups)),
    ] {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("hotnoc: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("[saved {}]", path.display());
    }
    ExitCode::SUCCESS
}

fn campaign_list() -> ExitCode {
    println!("built-in campaigns:");
    for (name, desc) in BUILTINS {
        println!("  {name:<18} {desc}");
    }
    println!("\nrun one with `hotnoc campaign run --builtin NAME [--quick]`");
    ExitCode::SUCCESS
}

fn campaign_expand(args: &[&str]) -> ExitCode {
    let flags = match Flags::parse(args, &["--builtin", "--spec"], &["--quick"]) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let spec = match load_campaign(&flags) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    let jobs = spec.expand();
    println!(
        "campaign {} (fingerprint {}): {} jobs",
        spec.name,
        spec.fingerprint(),
        jobs.len()
    );
    for (i, job) in jobs.iter().enumerate() {
        println!("{i:>5}  {}", job.name);
    }
    ExitCode::SUCCESS
}

/// Why a campaign artifact failed to load: bad input (not a campaign
/// artifact at all — exit 2) vs a document that names a known schema but
/// fails cross-validation (exit 1 in `check`).
enum LoadFailure {
    BadInput(String),
    Invalid(String),
}

/// A successfully loaded artifact: a whole campaign or one shard.
enum CheckedDoc {
    Campaign(CampaignDoc),
    Shard(ShardDoc),
}

/// Loads and strictly validates a `CAMPAIGN_*.json` artifact — whole
/// campaign or shard, dispatched on the `schema` tag — classifying
/// failures. An unreadable file, non-JSON content, or a missing/unknown
/// `schema` field is *bad input*, not an invalid artifact: those never
/// were artifacts, and the subcommands report them cleanly with exit 2
/// instead of treating them as failed validations (or panicking).
fn load_artifact(path: &str) -> Result<CheckedDoc, LoadFailure> {
    let text =
        std::fs::read_to_string(path).map_err(|e| LoadFailure::BadInput(format!("{path}: {e}")))?;
    let doc = Json::parse(&text).map_err(|e| LoadFailure::BadInput(format!("{path}: {e}")))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(CAMPAIGN_SCHEMA) => validate_campaign_json(&doc)
            .map(CheckedDoc::Campaign)
            .map_err(|e| LoadFailure::Invalid(format!("{path}: {e}"))),
        Some(SHARD_SCHEMA) => validate_shard_json(&doc)
            .map(CheckedDoc::Shard)
            .map_err(|e| LoadFailure::Invalid(format!("{path}: {e}"))),
        Some(other) => Err(LoadFailure::BadInput(format!(
            "{path}: unknown schema {other:?} (want {CAMPAIGN_SCHEMA:?} or {SHARD_SCHEMA:?})"
        ))),
        None => Err(LoadFailure::BadInput(format!(
            "{path}: missing \"schema\" field — not a campaign artifact"
        ))),
    }
}

fn campaign_check(paths: &[&str]) -> ExitCode {
    let mut invalid = false;
    let mut bad_input = false;
    for path in paths {
        match load_artifact(path) {
            Err(LoadFailure::BadInput(e)) => {
                eprintln!("{e}");
                bad_input = true;
            }
            Err(LoadFailure::Invalid(e)) => {
                eprintln!("{e}: INVALID");
                invalid = true;
            }
            Ok(CheckedDoc::Campaign(doc)) => {
                println!(
                    "{path}: ok (campaign {}, {} jobs)",
                    doc.spec.name,
                    doc.records.len()
                );
            }
            Ok(CheckedDoc::Shard(doc)) => {
                println!(
                    "{path}: ok (shard {} of campaign {}, {} of {} jobs)",
                    doc.shard,
                    doc.spec.name,
                    doc.records.len(),
                    doc.total_jobs
                );
            }
        }
    }
    if bad_input {
        ExitCode::from(2)
    } else if invalid {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn campaign_diff(args: &[&str]) -> ExitCode {
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold_pct = 15.0f64;
    let mut fail_on_regression = false;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--threshold-pct" => {
                let Some(v) = it.next() else {
                    return usage_error("--threshold-pct needs a value");
                };
                match v.parse::<f64>() {
                    Ok(p) if p.is_finite() && p >= 0.0 => threshold_pct = p,
                    _ => return usage_error("--threshold-pct must be a non-negative number"),
                }
            }
            "--fail-on-regression" => fail_on_regression = true,
            other if other.starts_with("--") => {
                return usage_error(&format!("unknown flag {other:?}"))
            }
            path => paths.push(path),
        }
    }
    if paths.len() != 2 {
        return usage_error("campaign diff needs exactly two artifact files");
    }
    let (path_a, path_b) = (paths[0], paths[1]);
    let load = |path: &str| match load_artifact(path) {
        Ok(CheckedDoc::Campaign(doc)) => Ok(doc),
        Ok(CheckedDoc::Shard(doc)) => {
            eprintln!(
                "hotnoc: {path}: is shard {} of campaign {} — merge the shard set first \
                 (`hotnoc campaign merge`), then diff the merged artifact",
                doc.shard, doc.spec.name
            );
            Err(())
        }
        Err(LoadFailure::BadInput(e) | LoadFailure::Invalid(e)) => {
            eprintln!("hotnoc: {e}");
            Err(())
        }
    };
    let (Ok(a), Ok(b)) = (load(path_a), load(path_b)) else {
        return ExitCode::from(2);
    };
    let report = diff_campaigns(&a, &b, threshold_pct);
    print!("{}", report.render());
    if report.groups.is_empty() {
        eprintln!("hotnoc: the campaigns share no comparable groups");
        return ExitCode::from(2);
    }
    if fail_on_regression && report.regressed() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn scenario_run(args: &[&str]) -> ExitCode {
    let flags = match Flags::parse(args, &["--spec", "--trace", "--profile"], &[]) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let Some(path) = flags.get("--spec") else {
        return usage_error("scenario run needs --spec FILE");
    };
    // An unreadable or invalid spec is bad input (exit 2), not a runtime
    // failure: nothing was simulated yet.
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hotnoc: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spec = match ScenarioSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hotnoc: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let trace_path = flags.get("--trace");
    let profile_path = flags.get("--profile");
    if profile_path.is_some() {
        // The timing sidecar is opt-in: with no flag the scope timers
        // stay a single relaxed load and record nothing.
        hotnoc_obs::prof::set_enabled(true);
    }
    let result = if trace_path.is_some() {
        run_scenario_traced(&spec).map(|(outcome, events)| (outcome, Some(events)))
    } else {
        hotnoc_scenario::run_scenario(&spec).map(|outcome| (outcome, None))
    };
    match result {
        Ok((outcome, events)) => {
            if let (Some(path), Some(events)) = (trace_path, events) {
                let doc = TraceDoc::new(&spec.name, events);
                if let Err(e) = std::fs::write(path, doc.to_jsonl()) {
                    eprintln!("hotnoc: {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[saved {path}]");
            }
            if let Some(path) = profile_path {
                let report = hotnoc_obs::prof::take_report();
                if let Err(e) = std::fs::write(path, profile_json(&report)) {
                    eprintln!("hotnoc: {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[saved {path}] (wall-clock sidecar; not deterministic)");
            }
            println!("{}", outcome.to_json());
            eprintln!("{}: {}", spec.name, outcome.summary());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hotnoc: scenario {} failed: {e}", spec.name);
            ExitCode::FAILURE
        }
    }
}

/// Loads a `hotnoc-trace-v1` JSONL file; any unreadable or malformed
/// trace is bad input (exit 2), matching the artifact-loading convention.
fn load_trace(path: &str) -> Result<TraceDoc, ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hotnoc: {path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    TraceDoc::parse(&text).map_err(|e| {
        eprintln!("hotnoc: {path}: {e}");
        ExitCode::from(2)
    })
}

fn trace_summary(args: &[&str]) -> ExitCode {
    let [path] = args else {
        return usage_error("trace summary needs exactly one FILE");
    };
    match load_trace(path) {
        Ok(doc) => {
            print!("{}", doc.summary(5));
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn trace_export(args: &[&str]) -> ExitCode {
    let flags_args: Vec<&str> = args.to_vec();
    let mut path: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut chrome = false;
    let mut it = flags_args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--chrome" => chrome = true,
            "--out" => {
                let Some(v) = it.next() else {
                    return usage_error("--out needs a value");
                };
                out = Some(v);
            }
            other if other.starts_with("--") => {
                return usage_error(&format!("unknown flag {other:?}"))
            }
            p if path.is_none() => path = Some(p),
            _ => return usage_error("trace export takes exactly one FILE"),
        }
    }
    if !chrome {
        return usage_error("trace export needs --chrome (the only export format)");
    }
    let Some(path) = path else {
        return usage_error("trace export needs a FILE");
    };
    let doc = match load_trace(path) {
        Ok(doc) => doc,
        Err(code) => return code,
    };
    let json = doc.chrome_trace_json();
    match out {
        Some(out_path) => {
            if let Err(e) = std::fs::write(out_path, &json) {
                eprintln!("hotnoc: {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[saved {out_path}]");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// Resolves the daemon endpoint from `--socket` / `--tcp`.
fn endpoint_of(socket: Option<&str>, tcp: Option<&str>) -> Result<Endpoint, String> {
    match (socket, tcp) {
        (Some(path), None) => Ok(Endpoint::Unix(PathBuf::from(path))),
        (None, Some(addr)) => Ok(Endpoint::Tcp(addr.to_string())),
        _ => Err("exactly one of --socket / --tcp is required".to_string()),
    }
}

fn serve_cmd(args: &[&str]) -> ExitCode {
    let flags = match Flags::parse(
        args,
        &[
            "--socket",
            "--tcp",
            "--journal",
            "--trace",
            "--threads",
            "--spool",
        ],
        &["--shutdown"],
    ) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let endpoint = match endpoint_of(flags.get("--socket"), flags.get("--tcp")) {
        Ok(e) => e,
        Err(e) => return usage_error(&e),
    };
    if flags.has("--shutdown") {
        // The graceful-drain path: ask the daemon to finish in-flight work
        // and exit. A daemon that isn't there is a runtime failure (1).
        return match hotnoc_serve::shutdown(&endpoint) {
            Ok(ack) => {
                println!("{ack}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("hotnoc: {endpoint}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let threads = match flags.get("--threads").map(str::parse::<usize>).transpose() {
        Ok(t) => t.unwrap_or_else(minipool::configured_threads).max(1),
        Err(e) => return usage_error(&format!("bad --threads: {e}")),
    };
    let opts = hotnoc_serve::ServeOptions {
        endpoint,
        threads,
        journal: flags.get("--journal").map(PathBuf::from),
        trace: flags.get("--trace").map(PathBuf::from),
        spool: PathBuf::from(flags.get("--spool").unwrap_or("hotnoc-serve-spool")),
    };
    match hotnoc_serve::serve(&opts) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hotnoc: serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn submit_cmd(args: &[&str]) -> ExitCode {
    let mut spec_path: Option<&str> = None;
    let mut socket: Option<&str> = None;
    let mut tcp: Option<&str> = None;
    let mut id: Option<&str> = None;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--socket" | "--tcp" | "--id" => {
                let Some(&v) = it.next() else {
                    return usage_error(&format!("{arg} needs a value"));
                };
                *match arg {
                    "--socket" => &mut socket,
                    "--tcp" => &mut tcp,
                    _ => &mut id,
                } = Some(v);
            }
            other if other.starts_with("--") => {
                return usage_error(&format!("unknown flag {other:?}"))
            }
            p if spec_path.is_none() => spec_path = Some(p),
            _ => return usage_error("submit takes exactly one SPEC.json"),
        }
    }
    let endpoint = match endpoint_of(socket, tcp) {
        Ok(e) => e,
        Err(e) => return usage_error(&e),
    };
    let Some(path) = spec_path else {
        return usage_error("submit needs a SPEC.json file");
    };
    // An unreadable or invalid spec is bad input (exit 2) — nothing
    // reached the daemon yet.
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hotnoc: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spec = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("hotnoc: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    // Validate locally and derive the default request id (the spec's
    // fingerprint, so repeat submissions of the same file produce
    // byte-identical responses), classifying exactly as the daemon does:
    // a "schema" field marks a campaign.
    let fingerprint = if spec.get("schema").is_some() {
        CampaignSpec::from_json(&spec).map(|c| c.fingerprint())
    } else {
        ScenarioSpec::from_json(&spec).map(|s| s.fingerprint())
    };
    let fingerprint = match fingerprint {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hotnoc: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let line = hotnoc_serve::submit_line(id.unwrap_or(&fingerprint), &spec);
    match hotnoc_serve::request(&endpoint, &line) {
        Ok(lines) => {
            for l in &lines {
                println!("{l}");
            }
            let status = hotnoc_serve::response_status(&lines);
            ExitCode::from(u8::try_from(status).unwrap_or(1))
        }
        Err(e) => {
            eprintln!("hotnoc: {endpoint}: {e}");
            ExitCode::FAILURE
        }
    }
}
