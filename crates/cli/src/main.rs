//! `hotnoc` — the command-line front end of the scenario & campaign engine.
//!
//! ```text
//! hotnoc campaign run (--builtin NAME | --spec FILE) [options]
//! hotnoc campaign list
//! hotnoc campaign expand (--builtin NAME | --spec FILE) [--quick]
//! hotnoc campaign check FILE...
//! hotnoc scenario run --spec FILE
//! ```
//!
//! Exit codes: 0 = success (a partial `--max-jobs` run that stopped on
//! schedule is a success), 1 = runtime failure (job failed, artifact
//! invalid, write failed), 2 = usage error.

use hotnoc_core::configs::Fidelity;
use hotnoc_scenario::builtin::{builtin, BUILTINS};
use hotnoc_scenario::runner::{
    parse_campaign_document, run_campaign, summary_table, RunnerOptions,
};
use hotnoc_scenario::{CampaignSpec, ScenarioSpec};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
hotnoc — scenario & campaign engine for the DATE'05 NoC reproduction

USAGE:
    hotnoc campaign run (--builtin NAME | --spec FILE)
                        [--out-dir DIR] [--threads N] [--max-jobs N]
                        [--fresh] [--quick] [--quiet]
    hotnoc campaign list
    hotnoc campaign expand (--builtin NAME | --spec FILE) [--quick]
    hotnoc campaign check FILE...
    hotnoc scenario run --spec FILE

OPTIONS:
    --builtin NAME   a built-in campaign (see `hotnoc campaign list`)
    --spec FILE      a JSON spec file (campaign or scenario)
    --out-dir DIR    artifact directory (default .)
    --threads N      worker threads (default HOTNOC_THREADS / parallelism)
    --max-jobs N     stop after N new jobs (the campaign stays resumable)
    --fresh          ignore an existing manifest instead of resuming
    --quick          run built-ins at quick fidelity (seconds, not minutes);
                     spec files set their own \"fidelity\" instead
    --quiet          suppress per-job progress lines
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["campaign", "run", rest @ ..] => campaign_run(rest),
        ["campaign", "list"] => campaign_list(),
        ["campaign", "expand", rest @ ..] => campaign_expand(rest),
        ["campaign", "check", rest @ ..] if !rest.is_empty() => campaign_check(rest),
        ["scenario", "run", rest @ ..] => scenario_run(rest),
        ["help"] | ["--help"] | ["-h"] => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => usage_error("unrecognized command"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("hotnoc: {msg}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

/// Flag parser shared by the subcommands. Returns `(flags with values,
/// boolean switches)` or a usage message.
struct Flags {
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[&str], value_flags: &[&str], switch_flags: &[&str]) -> Result<Flags, String> {
        let mut values = Vec::new();
        let mut switches = Vec::new();
        let mut it = args.iter();
        while let Some(&flag) = it.next() {
            if value_flags.contains(&flag) {
                let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                values.push((flag.to_string(), (*v).to_string()));
            } else if switch_flags.contains(&flag) {
                switches.push(flag.to_string());
            } else {
                return Err(format!("unknown flag {flag:?}"));
            }
        }
        Ok(Flags { values, switches })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, flag: &str) -> bool {
        self.switches.iter().any(|f| f == flag)
    }
}

/// Loads the campaign named by `--builtin`/`--spec` (exactly one required).
fn load_campaign(flags: &Flags) -> Result<CampaignSpec, String> {
    let fidelity = if flags.has("--quick") {
        Fidelity::Quick
    } else {
        Fidelity::Full
    };
    match (flags.get("--builtin"), flags.get("--spec")) {
        (Some(name), None) => builtin(name, fidelity)
            .ok_or_else(|| format!("unknown builtin {name:?} (see `hotnoc campaign list`)")),
        (None, Some(path)) => {
            if flags.has("--quick") {
                return Err(
                    "--quick only applies to --builtin campaigns; spec files set their own \
                     \"fidelity\""
                        .to_string(),
                );
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            CampaignSpec::parse(&text).map_err(|e| format!("{path}: {e}"))
        }
        _ => Err("exactly one of --builtin / --spec is required".to_string()),
    }
}

fn campaign_run(args: &[&str]) -> ExitCode {
    let flags = match Flags::parse(
        args,
        &[
            "--builtin",
            "--spec",
            "--out-dir",
            "--threads",
            "--max-jobs",
        ],
        &["--fresh", "--quick", "--quiet"],
    ) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let spec = match load_campaign(&flags) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    let parse_num = |flag: &str| -> Result<Option<usize>, String> {
        flags
            .get(flag)
            .map(|v| v.parse::<usize>().map_err(|e| format!("bad {flag}: {e}")))
            .transpose()
    };
    let (threads, max_jobs) = match (parse_num("--threads"), parse_num("--max-jobs")) {
        (Ok(t), Ok(m)) => (t, m),
        (Err(e), _) | (_, Err(e)) => return usage_error(&e),
    };
    let opts = RunnerOptions {
        threads: threads.unwrap_or_else(minipool::configured_threads).max(1),
        out_dir: PathBuf::from(flags.get("--out-dir").unwrap_or(".")),
        max_jobs,
        fresh: flags.has("--fresh"),
        progress: !flags.has("--quiet"),
    };
    eprintln!(
        "campaign {}: {} jobs on {} thread(s), artifacts in {}",
        spec.name,
        spec.expand().len(),
        opts.threads,
        opts.out_dir.display()
    );
    match run_campaign(&spec, &opts) {
        Ok(run) => {
            print!("{}", summary_table(&run));
            if run.resumed_jobs > 0 {
                println!("resumed {} job(s) from the manifest", run.resumed_jobs);
            }
            if let Some(path) = &run.json_path {
                println!("[saved {}]", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hotnoc: campaign {} failed: {e}", spec.name);
            ExitCode::FAILURE
        }
    }
}

fn campaign_list() -> ExitCode {
    println!("built-in campaigns:");
    for (name, desc) in BUILTINS {
        println!("  {name:<18} {desc}");
    }
    println!("\nrun one with `hotnoc campaign run --builtin NAME [--quick]`");
    ExitCode::SUCCESS
}

fn campaign_expand(args: &[&str]) -> ExitCode {
    let flags = match Flags::parse(args, &["--builtin", "--spec"], &["--quick"]) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let spec = match load_campaign(&flags) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    let jobs = spec.expand();
    println!(
        "campaign {} (fingerprint {}): {} jobs",
        spec.name,
        spec.fingerprint(),
        jobs.len()
    );
    for (i, job) in jobs.iter().enumerate() {
        println!("{i:>5}  {}", job.name);
    }
    ExitCode::SUCCESS
}

fn campaign_check(paths: &[&str]) -> ExitCode {
    let mut ok = true;
    for path in paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
            Ok(text) => match parse_campaign_document(&text) {
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    ok = false;
                }
                Ok(doc) => {
                    println!(
                        "{path}: ok (campaign {}, {} jobs)",
                        doc.spec.name,
                        doc.records.len()
                    );
                }
            },
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn scenario_run(args: &[&str]) -> ExitCode {
    let flags = match Flags::parse(args, &["--spec"], &[]) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let Some(path) = flags.get("--spec") else {
        return usage_error("scenario run needs --spec FILE");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hotnoc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match ScenarioSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hotnoc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match hotnoc_scenario::run_scenario(&spec) {
        Ok(outcome) => {
            println!("{}", outcome.to_json());
            eprintln!("{}: {}", spec.name, outcome.summary());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hotnoc: scenario {} failed: {e}", spec.name);
            ExitCode::FAILURE
        }
    }
}
