//! End-to-end tests of the `hotnoc` binary: campaign run / interrupt /
//! resume / check, spec-file campaigns, single scenarios, and exit codes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hotnoc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hotnoc"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotnoc-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A tiny traffic-only campaign spec file (6 jobs, debug-profile fast).
fn write_campaign_spec(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("tiny.json");
    std::fs::write(
        &path,
        r#"{
  "schema": "hotnoc-campaign-spec-v1",
  "name": "cli-tiny",
  "seed": 11,
  "fidelity": "quick",
  "configs": [{"config": "A"}],
  "workloads": [
    {"kind": "traffic", "pattern": "uniform", "rate": 0.06, "packet_len": 3, "cycles": 200},
    {"kind": "traffic", "pattern": "tornado", "rate": 0.05, "packet_len": 3, "cycles": 200}
  ],
  "policies": ["baseline"],
  "seeds": [1, 2, 3]
}"#,
    )
    .expect("write spec");
    path
}

#[test]
fn campaign_run_interrupt_resume_and_check() {
    let dir = tmp_dir("resume");
    let spec = write_campaign_spec(&dir);
    let out_dir = dir.join("artifacts");

    // Interrupted run: only 2 of 6 jobs.
    let partial = hotnoc()
        .args(["campaign", "run", "--spec"])
        .arg(&spec)
        .args(["--out-dir"])
        .arg(&out_dir)
        .args(["--threads", "2", "--max-jobs", "2"])
        .output()
        .expect("spawn hotnoc");
    assert!(partial.status.success(), "stderr: {}", stderr(&partial));
    assert!(stdout(&partial).contains("partial"), "{}", stdout(&partial));
    assert!(!out_dir.join("CAMPAIGN_cli-tiny.json").exists());
    assert!(out_dir.join("CAMPAIGN_cli-tiny.manifest.jsonl").exists());

    // Resume to completion.
    let resumed = hotnoc()
        .args(["campaign", "run", "--spec"])
        .arg(&spec)
        .args(["--out-dir"])
        .arg(&out_dir)
        .args(["--threads", "2"])
        .output()
        .expect("spawn hotnoc");
    assert!(resumed.status.success(), "stderr: {}", stderr(&resumed));
    let text = stdout(&resumed);
    assert!(text.contains("resumed 2 job(s)"), "{text}");
    assert!(text.contains("6/6 jobs"), "{text}");
    let artifact = out_dir.join("CAMPAIGN_cli-tiny.json");
    assert!(artifact.exists());

    // The emitted artifact validates.
    let check = hotnoc()
        .args(["campaign", "check"])
        .arg(&artifact)
        .output()
        .expect("spawn hotnoc");
    assert!(check.status.success(), "stderr: {}", stderr(&check));
    assert!(stdout(&check).contains("ok (campaign cli-tiny, 6 jobs)"));

    // A tampered artifact fails the check with exit 1.
    let tampered = out_dir.join("CAMPAIGN_tampered.json");
    let body = std::fs::read_to_string(&artifact).unwrap();
    std::fs::write(&tampered, body.replace("\"seed\": 11", "\"seed\": 12")).unwrap();
    let bad = hotnoc()
        .args(["campaign", "check"])
        .arg(&tampered)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(bad.status.code(), Some(1), "stderr: {}", stderr(&bad));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_artifacts_are_identical_across_thread_counts() {
    let dir = tmp_dir("threads");
    let spec = write_campaign_spec(&dir);
    let mut bytes = Vec::new();
    for threads in ["1", "4"] {
        let out_dir = dir.join(format!("t{threads}"));
        let run = hotnoc()
            .args(["campaign", "run", "--spec"])
            .arg(&spec)
            .args(["--out-dir"])
            .arg(&out_dir)
            .args(["--threads", threads, "--quiet"])
            .output()
            .expect("spawn hotnoc");
        assert!(run.status.success(), "stderr: {}", stderr(&run));
        bytes.push(std::fs::read(out_dir.join("CAMPAIGN_cli-tiny.json")).unwrap());
    }
    assert_eq!(bytes[0], bytes[1], "artifact differs across thread counts");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_list_and_expand() {
    let list = hotnoc().args(["campaign", "list"]).output().expect("spawn");
    assert!(list.status.success());
    for name in [
        "fig1",
        "period-sweep",
        "migration-cost",
        "adaptive-compare",
        "sweep",
        "smoke",
    ] {
        assert!(stdout(&list).contains(name), "missing builtin {name}");
    }

    let expand = hotnoc()
        .args(["campaign", "expand", "--builtin", "sweep", "--quick"])
        .output()
        .expect("spawn");
    assert!(expand.status.success());
    let text = stdout(&expand);
    assert!(text.contains("50 jobs"), "{text}");
    assert!(text.contains("A/w0:ldpc/rotation/p8/s0"), "{text}");
}

#[test]
fn scenario_run_prints_outcome_json() {
    let dir = tmp_dir("scenario");
    let spec = dir.join("scenario.json");
    std::fs::write(
        &spec,
        r#"{
  "name": "one-traffic",
  "chip": {"config": "B"},
  "workload": {"kind": "traffic", "pattern": "neighbor", "rate": 0.1, "packet_len": 2, "cycles": 150},
  "policy": {"kind": "baseline"},
  "mode": "cosim",
  "fidelity": "quick",
  "seed": 5
}"#,
    )
    .unwrap();
    let run = hotnoc()
        .args(["scenario", "run", "--spec"])
        .arg(&spec)
        .output()
        .expect("spawn");
    assert!(run.status.success(), "stderr: {}", stderr(&run));
    let text = stdout(&run);
    assert!(text.contains("\"kind\": \"traffic\""), "{text}");
    assert!(text.contains("\"drained\": true"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_2() {
    let bad = hotnoc().args(["campaign", "run"]).output().expect("spawn");
    assert_eq!(bad.status.code(), Some(2));
    let unknown = hotnoc().args(["frobnicate"]).output().expect("spawn");
    assert_eq!(unknown.status.code(), Some(2));
    let missing = hotnoc()
        .args(["campaign", "run", "--builtin", "nope"])
        .output()
        .expect("spawn");
    assert_eq!(missing.status.code(), Some(2));
    // --quick contradicts a spec file's own fidelity: reject, don't ignore.
    let conflict = hotnoc()
        .args(["campaign", "run", "--spec", "whatever.json", "--quick"])
        .output()
        .expect("spawn");
    assert_eq!(conflict.status.code(), Some(2));
}
