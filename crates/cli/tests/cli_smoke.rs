//! End-to-end tests of the `hotnoc` binary: campaign run / interrupt /
//! resume / check / diff, spec-file campaigns, single scenarios, and exit
//! codes.

use hotnoc_scenario::json::Json;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn hotnoc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hotnoc"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotnoc-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A tiny traffic-only campaign spec file (6 jobs, debug-profile fast).
fn write_campaign_spec(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("tiny.json");
    std::fs::write(
        &path,
        r#"{
  "schema": "hotnoc-campaign-spec-v1",
  "name": "cli-tiny",
  "seed": 11,
  "fidelity": "quick",
  "configs": [{"config": "A"}],
  "workloads": [
    {"kind": "traffic", "pattern": "uniform", "rate": 0.06, "packet_len": 3, "cycles": 200},
    {"kind": "traffic", "pattern": "tornado", "rate": 0.05, "packet_len": 3, "cycles": 200}
  ],
  "policies": ["baseline"],
  "seeds": [1, 2, 3]
}"#,
    )
    .expect("write spec");
    path
}

#[test]
fn campaign_run_interrupt_resume_and_check() {
    let dir = tmp_dir("resume");
    let spec = write_campaign_spec(&dir);
    let out_dir = dir.join("artifacts");

    // Interrupted run: only 2 of 6 jobs.
    let partial = hotnoc()
        .args(["campaign", "run", "--spec"])
        .arg(&spec)
        .args(["--out-dir"])
        .arg(&out_dir)
        .args(["--threads", "2", "--max-jobs", "2"])
        .output()
        .expect("spawn hotnoc");
    assert!(partial.status.success(), "stderr: {}", stderr(&partial));
    assert!(stdout(&partial).contains("partial"), "{}", stdout(&partial));
    assert!(!out_dir.join("CAMPAIGN_cli-tiny.json").exists());
    assert!(out_dir.join("CAMPAIGN_cli-tiny.manifest.jsonl").exists());

    // Resume to completion.
    let resumed = hotnoc()
        .args(["campaign", "run", "--spec"])
        .arg(&spec)
        .args(["--out-dir"])
        .arg(&out_dir)
        .args(["--threads", "2"])
        .output()
        .expect("spawn hotnoc");
    assert!(resumed.status.success(), "stderr: {}", stderr(&resumed));
    let text = stdout(&resumed);
    assert!(text.contains("resumed 2 job(s)"), "{text}");
    assert!(text.contains("6/6 jobs"), "{text}");
    let artifact = out_dir.join("CAMPAIGN_cli-tiny.json");
    assert!(artifact.exists());

    // The emitted artifact validates.
    let check = hotnoc()
        .args(["campaign", "check"])
        .arg(&artifact)
        .output()
        .expect("spawn hotnoc");
    assert!(check.status.success(), "stderr: {}", stderr(&check));
    assert!(stdout(&check).contains("ok (campaign cli-tiny, 6 jobs)"));

    // A tampered artifact fails the check with exit 1.
    let tampered = out_dir.join("CAMPAIGN_tampered.json");
    let body = std::fs::read_to_string(&artifact).unwrap();
    std::fs::write(&tampered, body.replace("\"seed\": 11", "\"seed\": 12")).unwrap();
    let bad = hotnoc()
        .args(["campaign", "check"])
        .arg(&tampered)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(bad.status.code(), Some(1), "stderr: {}", stderr(&bad));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_artifacts_are_identical_across_thread_counts() {
    let dir = tmp_dir("threads");
    let spec = write_campaign_spec(&dir);
    let mut bytes = Vec::new();
    for threads in ["1", "4"] {
        let out_dir = dir.join(format!("t{threads}"));
        let run = hotnoc()
            .args(["campaign", "run", "--spec"])
            .arg(&spec)
            .args(["--out-dir"])
            .arg(&out_dir)
            .args(["--threads", threads, "--quiet"])
            .output()
            .expect("spawn hotnoc");
        assert!(run.status.success(), "stderr: {}", stderr(&run));
        bytes.push(std::fs::read(out_dir.join("CAMPAIGN_cli-tiny.json")).unwrap());
    }
    assert_eq!(bytes[0], bytes[1], "artifact differs across thread counts");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_list_and_expand() {
    let list = hotnoc().args(["campaign", "list"]).output().expect("spawn");
    assert!(list.status.success());
    for name in [
        "fig1",
        "period-sweep",
        "migration-cost",
        "adaptive-compare",
        "sweep",
        "degraded-mesh",
        "smoke",
    ] {
        assert!(stdout(&list).contains(name), "missing builtin {name}");
    }

    let expand = hotnoc()
        .args(["campaign", "expand", "--builtin", "sweep", "--quick"])
        .output()
        .expect("spawn");
    assert!(expand.status.success());
    let text = stdout(&expand);
    assert!(text.contains("50 jobs"), "{text}");
    assert!(text.contains("A/w0:ldpc/rotation/p8/s0"), "{text}");
}

#[test]
fn scenario_run_prints_outcome_json() {
    let dir = tmp_dir("scenario");
    let spec = dir.join("scenario.json");
    std::fs::write(
        &spec,
        r#"{
  "name": "one-traffic",
  "chip": {"config": "B"},
  "workload": {"kind": "traffic", "pattern": "neighbor", "rate": 0.1, "packet_len": 2, "cycles": 150},
  "policy": {"kind": "baseline"},
  "mode": "cosim",
  "fidelity": "quick",
  "seed": 5
}"#,
    )
    .unwrap();
    let run = hotnoc()
        .args(["scenario", "run", "--spec"])
        .arg(&spec)
        .output()
        .expect("spawn");
    assert!(run.status.success(), "stderr: {}", stderr(&run));
    let text = stdout(&run);
    assert!(text.contains("\"kind\": \"traffic\""), "{text}");
    assert!(text.contains("\"drained\": true"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scenario_run_with_degraded_fabric_reports_fault_counters() {
    let dir = tmp_dir("faulty");
    let spec = dir.join("degraded.json");
    std::fs::write(
        &spec,
        r#"{
  "name": "degraded-traffic",
  "chip": {"config": "A"},
  "workload": {"kind": "traffic", "pattern": "uniform", "rate": 0.08, "packet_len": 3, "cycles": 300},
  "policy": {"kind": "baseline"},
  "mode": "cosim",
  "fidelity": "quick",
  "faults": [
    {"at": 0, "fail_router": [1, 1]},
    {"at": 50, "fail_link": [[2, 2], [3, 2]]}
  ],
  "seed": 7
}"#,
    )
    .unwrap();
    let run = hotnoc()
        .args(["scenario", "run", "--spec"])
        .arg(&spec)
        .output()
        .expect("spawn");
    assert!(run.status.success(), "stderr: {}", stderr(&run));
    let text = stdout(&run);
    // A dead router forces drops and/or detours; the outcome must say so.
    assert!(
        text.contains("packets_dropped") || text.contains("detour_hops"),
        "{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scenario_run_accepts_repair_before_fail_as_a_no_op() {
    // Pinned semantics (mirrors the fault.rs unit tests): a repair event
    // scheduled before any matching fail is valid input and a deterministic
    // runtime no-op — exit 0 with a normal outcome, not exit 2.
    let dir = tmp_dir("repair-first");
    let spec = dir.join("repair-first.json");
    std::fs::write(
        &spec,
        r#"{
  "name": "repair-first",
  "chip": {"config": "A"},
  "workload": {"kind": "traffic", "pattern": "uniform", "rate": 0.05, "packet_len": 2, "cycles": 150},
  "policy": {"kind": "baseline"},
  "mode": "cosim",
  "fidelity": "quick",
  "faults": [
    {"at": 10, "repair_router": [1, 1]},
    {"at": 20, "repair_link": [[0, 0], [1, 0]]}
  ],
  "seed": 3
}"#,
    )
    .unwrap();
    let run = hotnoc()
        .args(["scenario", "run", "--spec"])
        .arg(&spec)
        .output()
        .expect("spawn");
    assert_eq!(run.status.code(), Some(0), "stderr: {}", stderr(&run));
    let text = stdout(&run);
    assert!(text.contains("\"kind\": \"traffic\""), "{text}");

    // Byte-identical to the same scenario without the no-op events: strip
    // the faults (the spec *content* differs, but the outcome must not).
    let clean = dir.join("clean.json");
    let body = std::fs::read_to_string(&spec).unwrap();
    let start = body.find("  \"faults\"").expect("faults field present");
    let end = body[start..].find("],\n").expect("faults array ends") + start + 3;
    let mut stripped = body.clone();
    stripped.replace_range(start..end, "");
    std::fs::write(&clean, stripped).unwrap();
    let clean_run = hotnoc()
        .args(["scenario", "run", "--spec"])
        .arg(&clean)
        .output()
        .expect("spawn");
    assert_eq!(clean_run.status.code(), Some(0), "{}", stderr(&clean_run));
    assert_eq!(
        stdout(&run),
        stdout(&clean_run),
        "no-op repairs changed the outcome"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scenario_run_rejects_out_of_bounds_fault_as_bad_input() {
    // A fault plan naming a router outside the mesh is bad input: exit 2
    // with a message pointing at the offending event — never a panic, and
    // not exit 1 (nothing was simulated).
    let dir = tmp_dir("oob-fault");
    let spec = dir.join("oob.json");
    std::fs::write(
        &spec,
        r#"{
  "name": "oob-fault",
  "chip": {"config": "A"},
  "workload": {"kind": "traffic", "pattern": "uniform", "rate": 0.05, "packet_len": 3, "cycles": 100},
  "policy": {"kind": "baseline"},
  "mode": "cosim",
  "fidelity": "quick",
  "faults": [{"at": 0, "fail_router": [9, 9]}],
  "seed": 1
}"#,
    )
    .unwrap();
    let run = hotnoc()
        .args(["scenario", "run", "--spec"])
        .arg(&spec)
        .output()
        .expect("spawn");
    assert_eq!(run.status.code(), Some(2), "stderr: {}", stderr(&run));
    let err = stderr(&run);
    assert!(err.contains("fault"), "{err}");

    // Fault plans on the LDPC co-simulation are equally bad input.
    let ldpc = dir.join("ldpc-fault.json");
    std::fs::write(
        &ldpc,
        r#"{
  "name": "ldpc-fault",
  "chip": {"config": "A"},
  "workload": {"kind": "ldpc"},
  "policy": {"kind": "baseline"},
  "mode": "cosim",
  "fidelity": "quick",
  "faults": [{"at": 0, "fail_router": [1, 1]}],
  "seed": 1
}"#,
    )
    .unwrap();
    let run = hotnoc()
        .args(["scenario", "run", "--spec"])
        .arg(&ldpc)
        .output()
        .expect("spawn");
    assert_eq!(run.status.code(), Some(2), "stderr: {}", stderr(&run));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_check_cross_validates_fault_axes() {
    // A campaign over the failed_routers axis runs end to end from a spec
    // file, and `check` catches an artifact whose fault axis was tampered
    // with (the embedded spec re-expands to different jobs).
    let dir = tmp_dir("fault-axis");
    let spec = dir.join("degraded.json");
    std::fs::write(
        &spec,
        r#"{
  "schema": "hotnoc-campaign-spec-v1",
  "name": "cli-degraded",
  "seed": 19,
  "fidelity": "quick",
  "configs": [{"config": "A"}],
  "workloads": [
    {"kind": "traffic", "pattern": "uniform", "rate": 0.06, "packet_len": 3, "cycles": 200}
  ],
  "policies": ["baseline"],
  "failed_routers": [0, 1],
  "seeds": [1, 2]
}"#,
    )
    .unwrap();
    let out_dir = dir.join("artifacts");
    let run = hotnoc()
        .args(["campaign", "run", "--spec"])
        .arg(&spec)
        .args(["--out-dir"])
        .arg(&out_dir)
        .args(["--threads", "2", "--quiet"])
        .output()
        .expect("spawn hotnoc");
    assert!(run.status.success(), "stderr: {}", stderr(&run));
    let artifact = out_dir.join("CAMPAIGN_cli-degraded.json");
    let body = std::fs::read_to_string(&artifact).unwrap();
    assert!(body.contains("/fr1/"), "fault tag missing from artifact");

    let check = hotnoc()
        .args(["campaign", "check"])
        .arg(&artifact)
        .output()
        .expect("spawn hotnoc");
    assert!(check.status.success(), "stderr: {}", stderr(&check));

    let tampered = out_dir.join("CAMPAIGN_tampered-axis.json");
    std::fs::write(
        &tampered,
        body.replace("\"failed_routers\": [0, 1]", "\"failed_routers\": [0, 2]"),
    )
    .unwrap();
    let bad = hotnoc()
        .args(["campaign", "check"])
        .arg(&tampered)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(bad.status.code(), Some(1), "stderr: {}", stderr(&bad));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Path of a committed test fixture.
fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Scales every `mean_latency_cycles` field in a campaign document —
/// the "synthetically slowed artifact" of the regression-gate tests.
fn scale_latencies(j: &mut Json, factor: f64) {
    match j {
        Json::Object(fields) => {
            for (k, v) in fields.iter_mut() {
                if k == "mean_latency_cycles" {
                    if let Json::Num(x) = v {
                        *x *= factor;
                    }
                } else {
                    scale_latencies(v, factor);
                }
            }
        }
        Json::Array(items) => {
            for item in items.iter_mut() {
                scale_latencies(item, factor);
            }
        }
        _ => {}
    }
}

#[test]
fn campaign_diff_golden_report_and_exit_codes() {
    // Exit 0 + byte-for-byte golden report: two committed runs of the same
    // spec under different seed sets must diff to inconclusive groups with
    // near-unit ratios.
    let out = hotnoc()
        .args(["campaign", "diff"])
        .arg(fixture("CAMPAIGN_fix-a.json"))
        .arg(fixture("CAMPAIGN_fix-b.json"))
        .output()
        .expect("spawn hotnoc");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let golden = std::fs::read_to_string(fixture("diff_fix-a_fix-b.golden.txt")).unwrap();
    assert_eq!(
        stdout(&out),
        golden,
        "diff report drifted from the committed golden"
    );
    assert!(stdout(&out).contains("inconclusive"));

    // Exit 1: a synthetically slowed B trips --fail-on-regression.
    let dir = tmp_dir("diff");
    let text = std::fs::read_to_string(fixture("CAMPAIGN_fix-b.json")).unwrap();
    let mut doc = Json::parse(&text).expect("fixture parses");
    scale_latencies(&mut doc, 1.5);
    let slowed = dir.join("CAMPAIGN_slowed.json");
    std::fs::write(&slowed, format!("{doc}\n")).unwrap();
    let regressed = hotnoc()
        .args(["campaign", "diff"])
        .arg(fixture("CAMPAIGN_fix-a.json"))
        .arg(&slowed)
        .args(["--fail-on-regression", "--threshold-pct", "15"])
        .output()
        .expect("spawn hotnoc");
    assert_eq!(
        regressed.status.code(),
        Some(1),
        "stdout: {}\nstderr: {}",
        stdout(&regressed),
        stderr(&regressed)
    );
    assert!(stdout(&regressed).contains("verdict: REGRESSED"));
    // Without the gate flag the same diff is informational: exit 0.
    let informational = hotnoc()
        .args(["campaign", "diff"])
        .arg(fixture("CAMPAIGN_fix-a.json"))
        .arg(&slowed)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(informational.status.code(), Some(0));
    // A generous threshold absorbs the 50% slowdown.
    let tolerant = hotnoc()
        .args(["campaign", "diff"])
        .arg(fixture("CAMPAIGN_fix-a.json"))
        .arg(&slowed)
        .args(["--fail-on-regression", "--threshold-pct", "80"])
        .output()
        .expect("spawn hotnoc");
    assert_eq!(tolerant.status.code(), Some(0));

    // Exit 2: a cross-validation failure is bad input for diff — exit 1
    // is reserved for gated regressions.
    let tampered = dir.join("tampered.json");
    std::fs::write(&tampered, text.replace("\"seed\": 102", "\"seed\": 103")).unwrap();
    let invalid = hotnoc()
        .args(["campaign", "diff"])
        .arg(fixture("CAMPAIGN_fix-a.json"))
        .arg(&tampered)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(
        invalid.status.code(),
        Some(2),
        "stderr: {}",
        stderr(&invalid)
    );

    // Exit 2: bad input (missing file, usage error).
    let missing = hotnoc()
        .args(["campaign", "diff"])
        .arg(fixture("CAMPAIGN_fix-a.json"))
        .arg(dir.join("nope.json"))
        .output()
        .expect("spawn hotnoc");
    assert_eq!(missing.status.code(), Some(2));
    let one_arg = hotnoc()
        .args(["campaign", "diff"])
        .arg(fixture("CAMPAIGN_fix-a.json"))
        .output()
        .expect("spawn hotnoc");
    assert_eq!(one_arg.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_or_unknown_schema_is_clean_bad_input_exit_2() {
    // A document without a `schema` field (or with an unrecognized one)
    // never was a campaign artifact: `check` and `diff` must report it
    // cleanly with exit 2 — not exit 1 (a failed validation of a real
    // artifact) and certainly not a panic.
    let dir = tmp_dir("schema");
    let text = std::fs::read_to_string(fixture("CAMPAIGN_fix-a.json")).unwrap();
    let schemaless = dir.join("schemaless.json");
    std::fs::write(
        &schemaless,
        text.replacen("\"schema\": \"hotnoc-campaign-v1\", ", "", 1),
    )
    .unwrap();
    let unknown = dir.join("unknown.json");
    std::fs::write(
        &unknown,
        text.replacen("hotnoc-campaign-v1", "hotnoc-campaign-v99", 1),
    )
    .unwrap();

    for bad in [&schemaless, &unknown] {
        let check = hotnoc()
            .args(["campaign", "check"])
            .arg(bad)
            .output()
            .expect("spawn hotnoc");
        assert_eq!(
            check.status.code(),
            Some(2),
            "check {}: stderr: {}",
            bad.display(),
            stderr(&check)
        );
        assert!(stderr(&check).contains("schema"), "{}", stderr(&check));
        let diff = hotnoc()
            .args(["campaign", "diff"])
            .arg(fixture("CAMPAIGN_fix-a.json"))
            .arg(bad)
            .output()
            .expect("spawn hotnoc");
        assert_eq!(diff.status.code(), Some(2), "diff vs {}", bad.display());
    }

    // One bad-input file among valid ones dominates the exit code.
    let mixed = hotnoc()
        .args(["campaign", "check"])
        .arg(fixture("CAMPAIGN_fix-a.json"))
        .arg(&schemaless)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(mixed.status.code(), Some(2));
    assert!(stdout(&mixed).contains("ok (campaign fix-a, 6 jobs)"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_2() {
    let bad = hotnoc().args(["campaign", "run"]).output().expect("spawn");
    assert_eq!(bad.status.code(), Some(2));
    let unknown = hotnoc().args(["frobnicate"]).output().expect("spawn");
    assert_eq!(unknown.status.code(), Some(2));
    let missing = hotnoc()
        .args(["campaign", "run", "--builtin", "nope"])
        .output()
        .expect("spawn");
    assert_eq!(missing.status.code(), Some(2));
    // --quick contradicts a spec file's own fidelity: reject, don't ignore.
    let conflict = hotnoc()
        .args(["campaign", "run", "--spec", "whatever.json", "--quick"])
        .output()
        .expect("spawn");
    assert_eq!(conflict.status.code(), Some(2));
}
