//! End-to-end tests of distributed campaign sharding through the real
//! binary: `campaign run --shard i/n` + `campaign merge` reproduce the
//! whole-run artifacts byte-for-byte (including a kill/resume inside one
//! shard and shards at different thread counts), and every bad-input
//! path exits 2 with a message naming the offender.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn hotnoc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hotnoc"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotnoc-shardcli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A tiny traffic-only campaign spec file (6 jobs, debug-profile fast).
fn write_campaign_spec(dir: &Path, name: &str, seeds: &str) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create spec dir");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(
        &path,
        format!(
            r#"{{
  "schema": "hotnoc-campaign-spec-v1",
  "name": "{name}",
  "seed": 11,
  "fidelity": "quick",
  "configs": [{{"config": "A"}}],
  "workloads": [
    {{"kind": "traffic", "pattern": "uniform", "rate": 0.06, "packet_len": 3, "cycles": 200}},
    {{"kind": "traffic", "pattern": "tornado", "rate": 0.05, "packet_len": 3, "cycles": 200}}
  ],
  "policies": ["baseline"],
  "seeds": [{seeds}]
}}"#
        ),
    )
    .expect("write spec");
    path
}

fn run_spec(spec: &Path, out_dir: &Path, extra: &[&str]) -> Output {
    hotnoc()
        .arg("campaign")
        .arg("run")
        .arg("--spec")
        .arg(spec)
        .arg("--out-dir")
        .arg(out_dir)
        .arg("--quiet")
        .args(extra)
        .output()
        .expect("spawn hotnoc")
}

/// The tentpole proof, CLI edition: three shards — one interrupted with
/// `--max-jobs` then resumed at a different thread count, the others at
/// unequal thread counts — merge back to the exact whole-run bytes.
#[test]
fn sharded_run_merges_to_whole_run_bytes() {
    let dir = tmp_dir("merge");
    let spec = write_campaign_spec(&dir, "shard-e2e", "1, 2, 3");
    let whole_dir = dir.join("whole");
    let shard_dir = dir.join("shards");
    let merged_dir = dir.join("merged");

    let whole = run_spec(&spec, &whole_dir, &["--threads", "2"]);
    assert!(whole.status.success(), "{}", stderr(&whole));

    // Shard 0: 4 threads. Shard 1: interrupted after 1 job, resumed on 2
    // threads. Shard 2: single-threaded.
    let s0 = run_spec(&spec, &shard_dir, &["--shard", "0/3", "--threads", "4"]);
    assert!(s0.status.success(), "{}", stderr(&s0));
    let partial = run_spec(
        &spec,
        &shard_dir,
        &["--shard", "1/3", "--threads", "4", "--max-jobs", "1"],
    );
    assert!(partial.status.success(), "{}", stderr(&partial));
    assert!(
        stdout(&partial).contains("still pending"),
        "{}",
        stdout(&partial)
    );
    let s1 = run_spec(&spec, &shard_dir, &["--shard", "1/3", "--threads", "2"]);
    assert!(s1.status.success(), "{}", stderr(&s1));
    assert!(
        stdout(&s1).contains("resumed 1 job(s) from the manifest"),
        "{}",
        stdout(&s1)
    );
    let s2 = run_spec(&spec, &shard_dir, &["--shard", "2/3", "--threads", "1"]);
    assert!(s2.status.success(), "{}", stderr(&s2));

    let shard_paths: Vec<PathBuf> = (0..3)
        .map(|i| shard_dir.join(format!("CAMPAIGN_shard-e2e.shard-{i}-of-3.json")))
        .collect();
    for p in &shard_paths {
        assert!(p.exists(), "missing {}", p.display());
    }

    // `check` understands shard artifacts.
    let check = hotnoc()
        .arg("campaign")
        .arg("check")
        .args(&shard_paths)
        .output()
        .expect("spawn hotnoc");
    assert!(check.status.success(), "{}", stderr(&check));
    assert!(
        stdout(&check).contains("ok (shard 0/3 of campaign shard-e2e, 2 of 6 jobs)"),
        "{}",
        stdout(&check)
    );

    let merge = hotnoc()
        .arg("campaign")
        .arg("merge")
        .args(&shard_paths)
        .arg("--out-dir")
        .arg(&merged_dir)
        .output()
        .expect("spawn hotnoc");
    assert!(merge.status.success(), "{}", stderr(&merge));
    assert!(
        stdout(&merge).contains("merged 3 shard(s) of campaign shard-e2e: 6 jobs"),
        "{}",
        stdout(&merge)
    );

    // Byte-for-byte equality with the single-host run, both artifacts.
    for artifact in [
        "CAMPAIGN_shard-e2e.json",
        "CAMPAIGN_shard-e2e.aggregate.json",
    ] {
        let whole_bytes = std::fs::read(whole_dir.join(artifact)).expect("whole artifact");
        let merged_bytes = std::fs::read(merged_dir.join(artifact)).expect("merged artifact");
        assert_eq!(whole_bytes, merged_bytes, "{artifact} differs");
    }

    // The merged artifact validates and diffs cleanly against the whole run.
    let diff = hotnoc()
        .arg("campaign")
        .arg("diff")
        .arg(whole_dir.join("CAMPAIGN_shard-e2e.json"))
        .arg(merged_dir.join("CAMPAIGN_shard-e2e.json"))
        .arg("--fail-on-regression")
        .output()
        .expect("spawn hotnoc");
    assert!(diff.status.success(), "{}", stderr(&diff));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_incomplete_duplicate_and_mismatched_sets() {
    let dir = tmp_dir("reject");
    let spec = write_campaign_spec(&dir, "shard-rej", "1, 2, 3");
    let shard_dir = dir.join("shards");
    for i in 0..2 {
        let out = run_spec(&spec, &shard_dir, &["--shard", &format!("{i}/2")]);
        assert!(out.status.success(), "{}", stderr(&out));
    }
    let s0 = shard_dir.join("CAMPAIGN_shard-rej.shard-0-of-2.json");
    let s1 = shard_dir.join("CAMPAIGN_shard-rej.shard-1-of-2.json");

    // Missing shard.
    let out = hotnoc()
        .args(["campaign", "merge"])
        .arg(&s0)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("missing shard 1/2"),
        "{}",
        stderr(&out)
    );

    // Duplicate shard.
    let out = hotnoc()
        .args(["campaign", "merge"])
        .args([&s0, &s0, &s1])
        .output()
        .expect("spawn hotnoc");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("duplicate shard 0/2"),
        "{}",
        stderr(&out)
    );

    // Fingerprint mismatch: same campaign name, different seed axis.
    let other_spec = write_campaign_spec(&dir.join("other"), "shard-rej", "1, 2");
    let other_dir = dir.join("other-shards");
    let out = run_spec(&other_spec, &other_dir, &["--shard", "1/2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = hotnoc()
        .args(["campaign", "merge"])
        .arg(&s0)
        .arg(other_dir.join("CAMPAIGN_shard-rej.shard-1-of-2.json"))
        .output()
        .expect("spawn hotnoc");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("fingerprint mismatch"),
        "{}",
        stderr(&out)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_and_check_classify_bad_inputs_as_exit_2() {
    let dir = tmp_dir("badinput");

    // Unreadable file.
    let missing = dir.join("nope.json");
    let out = hotnoc()
        .args(["campaign", "merge"])
        .arg(&missing)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("nope.json"), "{}", stderr(&out));

    // Valid JSON without a schema tag.
    let schemaless = dir.join("schemaless.json");
    std::fs::write(&schemaless, "{\"jobs\": 3}\n").unwrap();
    let out = hotnoc()
        .args(["campaign", "merge"])
        .arg(&schemaless)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("missing \"schema\""),
        "{}",
        stderr(&out)
    );

    // A known-but-wrong schema.
    let wrong = dir.join("wrong.json");
    std::fs::write(&wrong, "{\"schema\": \"hotnoc-bench-v2\"}\n").unwrap();
    let out = hotnoc()
        .args(["campaign", "merge"])
        .arg(&wrong)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown schema"), "{}", stderr(&out));
    let out = hotnoc()
        .args(["campaign", "check"])
        .arg(&wrong)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(out.status.code(), Some(2));

    // A whole-campaign artifact handed to merge.
    let spec = write_campaign_spec(&dir, "shard-bad", "1, 2, 3");
    let whole_dir = dir.join("whole");
    let out = run_spec(&spec, &whole_dir, &[]);
    assert!(out.status.success(), "{}", stderr(&out));
    let whole = whole_dir.join("CAMPAIGN_shard-bad.json");
    let out = hotnoc()
        .args(["campaign", "merge"])
        .arg(&whole)
        .output()
        .expect("spawn hotnoc");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("not a shard"), "{}", stderr(&out));

    // A shard artifact handed to diff.
    let shard_dir = dir.join("shards");
    let out = run_spec(&spec, &shard_dir, &["--shard", "0/2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let shard = shard_dir.join("CAMPAIGN_shard-bad.shard-0-of-2.json");
    let out = hotnoc()
        .args(["campaign", "diff"])
        .args([&shard, &whole])
        .output()
        .expect("spawn hotnoc");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("merge the shard set first"),
        "{}",
        stderr(&out)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_shard_flags_are_usage_errors() {
    let dir = tmp_dir("usage");
    let spec = write_campaign_spec(&dir, "shard-usage", "1, 2, 3");
    for bad in ["3/3", "0/0", "banana", "1/2/3"] {
        let out = run_spec(&spec, &dir.join("out"), &["--shard", bad]);
        assert_eq!(out.status.code(), Some(2), "--shard {bad}");
        assert!(stderr(&out).contains("shard"), "{}", stderr(&out));
    }
    // merge with no paths is a usage error too.
    let out = hotnoc()
        .args(["campaign", "merge"])
        .output()
        .expect("spawn hotnoc");
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
