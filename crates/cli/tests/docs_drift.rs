//! Anti-rot enforcement for the `docs/` book:
//!
//! * every ` ```sh run ` block in `docs/OPERATIONS.md` and
//!   `docs/SERVING.md` is executed, in order, against the real `hotnoc`
//!   binary (CARGO_BIN_EXE) in one shared scratch directory per document
//!   — if a runbook drifts from the CLI, this test fails;
//! * every `hotnoc-*-vN` schema id named in `docs/ARTIFACTS.md` must
//!   appear in the source tree — documenting a schema nothing emits (or
//!   renaming one without updating the reference) fails.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotnoc-docs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Extracts the bodies of fenced code blocks whose info string is
/// exactly `tag` (e.g. `sh run`), in document order.
fn fenced_blocks(markdown: &str, tag: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in markdown.lines() {
        match &mut current {
            None => {
                if line.trim() == format!("```{tag}") {
                    current = Some(String::new());
                }
            }
            Some(body) => {
                if line.trim() == "```" {
                    blocks.push(current.take().expect("open block"));
                } else {
                    body.push_str(line);
                    body.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```{tag} block");
    blocks
}

/// Replays a document's ` ```sh run ` blocks against the current binary,
/// sequentially, sharing one working directory (later blocks consume
/// earlier blocks' outputs).
fn replay_doc_blocks(doc_rel: &str, tag: &str, min_blocks: usize) {
    let doc = std::fs::read_to_string(repo_root().join(doc_rel))
        .unwrap_or_else(|e| panic!("{doc_rel}: {e}"));
    let blocks = fenced_blocks(&doc, "sh run");
    assert!(
        blocks.len() >= min_blocks,
        "expected a substantial runbook in {doc_rel}, found {} runnable block(s)",
        blocks.len()
    );

    // Put a `hotnoc` symlink to the test binary on PATH so the blocks
    // read exactly like real fleet commands.
    let work = scratch_dir(tag);
    let bin_dir = work.join(".bin");
    std::fs::create_dir_all(&bin_dir).expect("create bin dir");
    #[cfg(unix)]
    std::os::unix::fs::symlink(env!("CARGO_BIN_EXE_hotnoc"), bin_dir.join("hotnoc"))
        .expect("symlink hotnoc");
    #[cfg(not(unix))]
    std::fs::copy(env!("CARGO_BIN_EXE_hotnoc"), bin_dir.join("hotnoc.exe"))
        .map(|_| ())
        .expect("copy hotnoc");
    let path = format!(
        "{}:{}",
        bin_dir.display(),
        std::env::var("PATH").unwrap_or_default()
    );

    for (i, block) in blocks.iter().enumerate() {
        let script = format!("set -eu\n{block}");
        let out = std::process::Command::new("sh")
            .arg("-c")
            .arg(&script)
            .current_dir(&work)
            .env("PATH", &path)
            .output()
            .expect("spawn sh");
        assert!(
            out.status.success(),
            "runnable block #{} failed (exit {:?}):\n--- script ---\n{script}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            i + 1,
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
    }
    let _ = std::fs::remove_dir_all(&work);
}

/// The OPERATIONS.md fleet runbook actually works.
#[test]
fn operations_runbook_blocks_execute_against_the_binary() {
    replay_doc_blocks("docs/OPERATIONS.md", "ops", 4);
}

/// The SERVING.md daemon walkthrough actually works: start a daemon,
/// submit the same spec twice (`cmp`-identical, second from cache),
/// survive a bad spec, drain cleanly.
#[test]
fn serving_reference_blocks_execute_against_the_binary() {
    replay_doc_blocks("docs/SERVING.md", "serving", 4);
}

/// Collects every `hotnoc-...-vN` schema token in `text`.
fn schema_ids(text: &str) -> Vec<String> {
    let mut ids = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(pos) = text[i..].find("hotnoc-") {
        let start = i + pos;
        let mut end = start;
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'-')
        {
            end += 1;
        }
        let token = &text[start..end];
        // A schema id ends in a -v<digits> version suffix; other
        // hotnoc-* tokens (crate names like hotnoc-scenario) are not
        // schema ids.
        if let Some(tail) = token.rfind("-v") {
            let version = &token[tail + 2..];
            if !version.is_empty() && version.bytes().all(|b| b.is_ascii_digit()) {
                ids.push(token.to_string());
            }
        }
        i = end.max(start + 1);
    }
    ids.sort();
    ids.dedup();
    ids
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Every schema id ARTIFACTS.md documents exists in the source tree,
/// and the known emitted schemas are all documented.
#[test]
fn artifacts_reference_matches_source_schemas() {
    let root = repo_root();
    let doc =
        std::fs::read_to_string(root.join("docs/ARTIFACTS.md")).expect("read docs/ARTIFACTS.md");
    let documented = schema_ids(&doc);

    for required in [
        "hotnoc-campaign-spec-v1",
        "hotnoc-campaign-v1",
        "hotnoc-campaign-shard-v1",
        "hotnoc-campaign-aggregate-v1",
        "hotnoc-campaign-manifest-v1",
        "hotnoc-bench-v2",
        "hotnoc-trace-v1",
        "hotnoc-profile-v1",
        "hotnoc-serve-journal-v1",
    ] {
        assert!(
            documented.iter().any(|d| d == required),
            "docs/ARTIFACTS.md does not document {required}"
        );
    }

    let mut sources = Vec::new();
    rust_sources(&root.join("crates"), &mut sources);
    rust_sources(&root.join("vendor"), &mut sources);
    let mut all_source_text = String::new();
    for path in &sources {
        all_source_text.push_str(&std::fs::read_to_string(path).expect("read source"));
    }
    for id in &documented {
        assert!(
            all_source_text.contains(id.as_str()),
            "docs/ARTIFACTS.md documents {id}, but no source under crates/ or vendor/ mentions it"
        );
    }
}
