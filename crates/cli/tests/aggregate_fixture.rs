//! Regression pin for the aggregate artifact bytes: re-aggregating the
//! committed campaign fixture must reproduce the committed golden
//! aggregate exactly. The empty-histogram aggregation rule (fully-dropped
//! traffic records contribute no latency samples) must never perturb
//! artifacts built from healthy records like these.

use hotnoc_scenario::runner::parse_campaign_document;
use hotnoc_scenario::stats::{aggregate, aggregate_json};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn fixture_aggregate_bytes_are_pinned() {
    let text = std::fs::read_to_string(fixture("CAMPAIGN_fix-a.json")).unwrap();
    let doc = parse_campaign_document(&text).expect("fixture validates");
    // The pin only proves what it claims while the fixture's records are
    // healthy (delivered > 0 everywhere).
    for rec in &doc.records {
        match &rec.outcome {
            hotnoc_scenario::ScenarioOutcome::Traffic(m) => {
                assert!(m.delivered > 0, "fixture record {} is degraded", rec.index);
            }
            other => panic!("unexpected outcome kind {:?}", other.kind()),
        }
    }
    let got = aggregate_json(&doc.spec, &aggregate(&doc.records));
    let golden_path = fixture("CAMPAIGN_fix-a.aggregate.golden.json");
    if std::env::var_os("HOTNOC_REGEN_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path).expect("committed golden aggregate");
    assert_eq!(
        got, golden,
        "aggregate bytes drifted from the committed golden"
    );
}
