//! End-to-end tests of `hotnoc serve` / `hotnoc submit` as real
//! processes: daemon start-up, byte-identical repeat submissions served
//! from the cache, client exit codes, and graceful `--shutdown`.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

fn hotnoc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hotnoc"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotnoc-serve-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn write_scenario_spec(dir: &Path) -> PathBuf {
    let path = dir.join("one.json");
    std::fs::write(
        &path,
        r#"{
  "name": "rt-one",
  "chip": {"config": "A"},
  "workload": {"kind": "traffic", "pattern": "uniform", "rate": 0.05, "packet_len": 2, "cycles": 120},
  "policy": {"kind": "baseline"},
  "mode": "cosim",
  "fidelity": "quick",
  "seed": 7
}"#,
    )
    .expect("write spec");
    path
}

/// A daemon child that is killed on drop so a failing test can't leak a
/// process holding the socket.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn start_daemon(socket: &Path, journal: &Path, spool: &Path) -> Daemon {
    let mut child = hotnoc()
        .arg("serve")
        .arg("--socket")
        .arg(socket)
        .arg("--journal")
        .arg(journal)
        .arg("--spool")
        .arg(spool)
        .args(["--threads", "2"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    // Wait for the socket to accept a submission-free probe.
    for _ in 0..400 {
        if socket.exists() {
            return Daemon(child);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!("daemon never bound {}", socket.display());
}

fn submit(socket: &Path, spec: &Path) -> Output {
    hotnoc()
        .arg("submit")
        .arg(spec)
        .arg("--socket")
        .arg(socket)
        .output()
        .expect("run submit")
}

#[test]
fn repeat_submission_is_byte_identical_and_shutdown_drains() {
    let dir = tmp_dir("roundtrip");
    let socket = dir.join("hotnoc.sock");
    let journal = dir.join("journal.jsonl");
    let spec = write_scenario_spec(&dir);
    let daemon = start_daemon(&socket, &journal, &dir.join("spool"));

    let first = submit(&socket, &spec);
    assert!(
        first.status.success(),
        "first submit failed: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let second = submit(&socket, &spec);
    assert!(second.status.success());
    // The serving layer's contract: the cached response is byte-identical
    // to the computed one (the default id is the spec fingerprint, so no
    // client-side nonce can differ either).
    assert_eq!(first.stdout, second.stdout);
    let body = String::from_utf8_lossy(&first.stdout);
    assert!(body.contains(r#""status": 0"#), "unexpected body: {body}");
    assert!(body.contains(r#""fingerprint""#), "unexpected body: {body}");

    // A spec that is not JSON at all is bad input, client-side (exit 2).
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "not json").expect("write garbage");
    let bad = submit(&socket, &garbage);
    assert_eq!(bad.status.code(), Some(2));

    // Graceful drain: the shutdown client exits 0, then the daemon itself
    // exits 0 and releases the socket.
    let down = hotnoc()
        .args(["serve", "--shutdown", "--socket"])
        .arg(&socket)
        .output()
        .expect("run shutdown");
    assert!(
        down.status.success(),
        "shutdown failed: {}",
        String::from_utf8_lossy(&down.stderr)
    );
    let mut daemon = daemon;
    let status = daemon.0.wait().expect("wait for daemon");
    assert!(status.success(), "daemon exited {status:?}");
    assert!(!socket.exists(), "drained daemon left its socket behind");

    // The journal holds the header plus exactly one computed result, and
    // every line is valid JSON (no torn lines).
    let text = std::fs::read_to_string(&journal).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "journal:\n{text}");
    for line in &lines {
        hotnoc_scenario::json::Json::parse(line).expect("journal line parses");
    }
    assert!(lines[0].contains("hotnoc-serve-journal-v1"));
}

#[test]
fn submit_without_a_daemon_fails_with_exit_one() {
    let dir = tmp_dir("nodaemon");
    let spec = write_scenario_spec(&dir);
    let out = submit(&dir.join("absent.sock"), &spec);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn serve_flag_validation_is_a_usage_error() {
    // Neither --socket nor --tcp.
    let out = hotnoc().arg("serve").output().expect("run serve");
    assert_eq!(out.status.code(), Some(2));
    // Both at once.
    let out = hotnoc()
        .args(["submit", "x.json", "--socket", "a", "--tcp", "b:1"])
        .output()
        .expect("run submit");
    assert_eq!(out.status.code(), Some(2));
}
