//! Property tests for the thermal stack: LU correctness on random
//! diagonally dominant systems, physical monotonicity of the RC network and
//! unconditional stability of backward Euler.

use hotnoc_thermal::linalg::DMat;
use hotnoc_thermal::{Floorplan, Integrator, PackageConfig, RcNetwork, TransientSim};
use proptest::prelude::*;

fn net() -> RcNetwork {
    let plan = Floorplan::mesh_grid(4, 4, 4.36e-6).unwrap();
    RcNetwork::build(&plan, &PackageConfig::date05_defaults()).unwrap()
}

proptest! {
    // Raised from the vendored default of 64 now that transient stepping is
    // sparse (ROADMAP open item): the invariants deserve a denser sample.
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn lu_solves_random_dominant_systems(
        n in 2usize..24,
        seed in 0u64..10_000,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = rng.gen_range(-1.0..1.0);
            }
            m[(i, i)] += n as f64 + 1.0;
        }
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let b = m.matvec(&x);
        let got = m.lu().unwrap().solve(&b);
        for (a, e) in got.iter().zip(&x) {
            prop_assert!((a - e).abs() < 1e-8, "{a} != {e}");
        }
    }

    #[test]
    fn hotter_inputs_give_hotter_outputs(
        idx in 0usize..16,
        base in 0.2f64..2.0,
        extra in 0.1f64..3.0,
    ) {
        let net = net();
        let p1 = vec![base; 16];
        let mut p2 = p1.clone();
        p2[idx] += extra;
        let t1 = net.steady_state(&p1).unwrap();
        let t2 = net.steady_state(&p2).unwrap();
        // Adding power anywhere cannot cool any block (M-matrix property).
        for (a, b) in t1.iter().zip(&t2) {
            prop_assert!(*b >= a - 1e-12);
        }
        // And the boosted block heats strictly.
        prop_assert!(t2[idx] > t1[idx] + 1e-9);
    }

    #[test]
    fn backward_euler_stays_finite_for_any_dt(
        dt_exp in -7.0f64..2.0,
        watts in 0.0f64..4.0,
    ) {
        let net = net();
        let dt = 10f64.powf(dt_exp);
        let mut sim = TransientSim::new(&net, dt, Integrator::BackwardEuler).unwrap();
        let p = vec![watts; 16];
        for _ in 0..50 {
            sim.step(&p).unwrap();
        }
        prop_assert!(sim.temps().iter().all(|t| t.is_finite()));
        // Bounded by the steady state (monotone approach from ambient).
        let steady = net.steady_state(&p).unwrap();
        let steady_peak = steady.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(sim.peak_block_temp() <= steady_peak + 1e-6);
    }

    #[test]
    fn steady_state_scales_linearly(scale in 0.1f64..10.0) {
        let net = net();
        let amb = net.ambient();
        let p1 = vec![1.0; 16];
        let p2: Vec<f64> = p1.iter().map(|p| p * scale).collect();
        let t1 = net.steady_state(&p1).unwrap();
        let t2 = net.steady_state(&p2).unwrap();
        for (a, b) in t1.iter().zip(&t2) {
            let rise1 = a - amb;
            let rise2 = b - amb;
            prop_assert!((rise2 - scale * rise1).abs() < 1e-8);
        }
    }
}
