//! Material constants for the die and package stack.
//!
//! Values follow the HotSpot tool's defaults (silicon and copper at typical
//! operating temperatures); the thermal interface material matches a
//! standard thermal grease.

use serde::{Deserialize, Serialize};

/// A homogeneous thermal material.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Thermal conductivity in W/(m·K).
    pub conductivity: f64,
    /// Volumetric heat capacity in J/(m^3·K).
    pub volumetric_capacity: f64,
}

impl Material {
    /// Silicon (HotSpot default: k = 100 W/mK, c = 1.75e6 J/m^3K).
    pub const SILICON: Material = Material {
        conductivity: 100.0,
        volumetric_capacity: 1.75e6,
    };

    /// Copper (spreader and sink; k = 400 W/mK, c = 3.55e6 J/m^3K).
    pub const COPPER: Material = Material {
        conductivity: 400.0,
        volumetric_capacity: 3.55e6,
    };

    /// Thermal interface grease (k = 4 W/mK, c = 4.0e6 J/m^3K).
    pub const TIM: Material = Material {
        conductivity: 4.0,
        volumetric_capacity: 4.0e6,
    };

    /// Conduction resistance through a slab of this material:
    /// `R = t / (k * area)` in K/W.
    ///
    /// # Panics
    ///
    /// Panics (debug) on non-positive thickness or area.
    pub fn slab_resistance(&self, thickness_m: f64, area_m2: f64) -> f64 {
        debug_assert!(thickness_m > 0.0 && area_m2 > 0.0);
        thickness_m / (self.conductivity * area_m2)
    }

    /// Heat capacity of a slab: `C = c_vol * t * area` in J/K.
    pub fn slab_capacity(&self, thickness_m: f64, area_m2: f64) -> f64 {
        self.volumetric_capacity * thickness_m * area_m2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silicon_slab_resistance() {
        // 0.3 mm silicon over 1 cm^2: R = 3e-4 / (100 * 1e-4) = 0.03 K/W
        let r = Material::SILICON.slab_resistance(0.3e-3, 1e-4);
        assert!((r - 0.03).abs() < 1e-12);
    }

    #[test]
    fn copper_conducts_better_than_tim() {
        let r_cu = Material::COPPER.slab_resistance(1e-3, 1e-4);
        let r_tim = Material::TIM.slab_resistance(1e-3, 1e-4);
        assert!(r_cu < r_tim);
    }

    #[test]
    fn capacity_scales_with_volume() {
        let c1 = Material::SILICON.slab_capacity(1e-3, 1e-4);
        let c2 = Material::SILICON.slab_capacity(2e-3, 1e-4);
        assert!((c2 / c1 - 2.0).abs() < 1e-12);
    }
}
