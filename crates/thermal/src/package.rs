//! Package stack configuration: die, TIM, spreader, sink, convection.

use crate::error::ThermalError;
use crate::materials::Material;
use serde::{Deserialize, Serialize};

/// Geometry and material parameters of the chip package.
///
/// The default values are HotSpot-style: a silicon die under thermal grease,
/// a copper heat spreader and heat sink, and a lumped convection resistance
/// to ambient. [`PackageConfig::date05_defaults`] additionally sets the
/// paper's 40 °C ambient and a convection resistance sized for the small
/// embedded package of a 160 nm LDPC decoder chip (see DESIGN.md §5,
/// calibration notes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackageConfig {
    /// Die thickness in metres.
    pub t_die: f64,
    /// Die material.
    pub die: Material,
    /// Thermal-interface-material thickness in metres.
    pub t_tim: f64,
    /// TIM material.
    pub tim: Material,
    /// Heat-spreader side length in metres.
    pub spreader_side: f64,
    /// Heat-spreader thickness in metres.
    pub t_spreader: f64,
    /// Spreader material.
    pub spreader: Material,
    /// Heat-sink base side length in metres.
    pub sink_side: f64,
    /// Heat-sink base thickness in metres.
    pub t_sink: f64,
    /// Sink material.
    pub sink: Material,
    /// Convection resistance sink -> ambient, in K/W.
    pub r_convec: f64,
    /// Lumped convection (sink fin + air) capacity in J/K.
    pub c_convec: f64,
    /// Ambient temperature in °C.
    pub ambient_celsius: f64,
    /// Lumped-RC capacitance scaling factor (HotSpot uses ~0.33 for the
    /// block model to match distributed-RC step responses).
    pub cap_factor: f64,
}

impl Default for PackageConfig {
    fn default() -> Self {
        PackageConfig {
            t_die: 0.3e-3,
            die: Material::SILICON,
            t_tim: 75.0e-6,
            tim: Material::TIM,
            spreader_side: 30.0e-3,
            t_spreader: 1.0e-3,
            spreader: Material::COPPER,
            sink_side: 60.0e-3,
            t_sink: 6.9e-3,
            sink: Material::COPPER,
            r_convec: 0.9,
            c_convec: 140.4,
            ambient_celsius: 45.0,
            cap_factor: 0.33,
        }
    }
}

impl PackageConfig {
    /// The configuration used throughout the paper's experiments: HotSpot
    /// defaults with a 40 °C ambient.
    pub fn date05_defaults() -> Self {
        PackageConfig {
            ambient_celsius: 40.0,
            ..PackageConfig::default()
        }
    }

    /// Validates physical plausibility of every parameter.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidPackage`] naming the first bad field.
    pub fn validate(&self) -> Result<(), ThermalError> {
        let checks: [(&'static str, f64); 9] = [
            ("t_die", self.t_die),
            ("t_tim", self.t_tim),
            ("spreader_side", self.spreader_side),
            ("t_spreader", self.t_spreader),
            ("sink_side", self.sink_side),
            ("t_sink", self.t_sink),
            ("r_convec", self.r_convec),
            ("c_convec", self.c_convec),
            ("cap_factor", self.cap_factor),
        ];
        for (name, v) in checks {
            if !(v.is_finite() && v > 0.0) {
                return Err(ThermalError::InvalidPackage { what: name });
            }
        }
        if !self.ambient_celsius.is_finite() {
            return Err(ThermalError::InvalidPackage {
                what: "ambient_celsius",
            });
        }
        for (name, m) in [
            ("die material", self.die),
            ("tim material", self.tim),
            ("spreader material", self.spreader),
            ("sink material", self.sink),
        ] {
            if !(m.conductivity > 0.0 && m.volumetric_capacity > 0.0) {
                return Err(ThermalError::InvalidPackage { what: name });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PackageConfig::default().validate().unwrap();
        PackageConfig::date05_defaults().validate().unwrap();
    }

    #[test]
    fn date05_ambient_is_40c() {
        assert_eq!(PackageConfig::date05_defaults().ambient_celsius, 40.0);
    }

    #[test]
    fn bad_values_rejected() {
        let p = PackageConfig {
            t_die: 0.0,
            ..PackageConfig::default()
        };
        assert!(p.validate().is_err());
        let p = PackageConfig {
            r_convec: f64::NAN,
            ..PackageConfig::default()
        };
        assert!(p.validate().is_err());
        let p = PackageConfig {
            ambient_celsius: f64::INFINITY,
            ..PackageConfig::default()
        };
        assert!(p.validate().is_err());
    }
}
