//! Grid-mode refinement (HotSpot's second operating mode).
//!
//! The block model resolves one temperature per functional unit; grid mode
//! subdivides each block into `g x g` cells for sub-block resolution. Here
//! the refinement reuses the same RC builder: a refined [`Floorplan`] runs
//! through [`RcNetwork::build`] unchanged, so the two modes are guaranteed
//! to share the package model, and block mode is exactly grid mode with
//! `g = 1`.

use crate::error::ThermalError;
use crate::floorplan::{Block, Floorplan};
use crate::package::PackageConfig;
use crate::rc_model::RcNetwork;

/// A grid-refined thermal model: the original block list plus the refined
/// network.
#[derive(Debug, Clone)]
pub struct GridModel {
    factor: usize,
    n_blocks: usize,
    net: RcNetwork,
}

impl GridModel {
    /// Builds a grid model with `factor x factor` cells per block.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidStep`] for `factor == 0` or a refinement so
    ///   large it would exceed 4096 cells (keep LU tractable).
    /// * Propagates floorplan/package validation failures.
    pub fn build(
        plan: &Floorplan,
        pkg: &PackageConfig,
        factor: usize,
    ) -> Result<Self, ThermalError> {
        if factor == 0 {
            return Err(ThermalError::InvalidStep {
                what: "refinement factor must be >= 1",
            });
        }
        let cells = plan.len() * factor * factor;
        if cells > 4096 {
            return Err(ThermalError::InvalidStep {
                what: "refinement too large (over 4096 cells)",
            });
        }
        let refined = refine(plan, factor)?;
        let net = RcNetwork::build(&refined, pkg)?;
        Ok(GridModel {
            factor,
            n_blocks: plan.len(),
            net,
        })
    }

    /// The refinement factor per block side.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Cells per block.
    pub fn cells_per_block(&self) -> usize {
        self.factor * self.factor
    }

    /// The underlying refined network (usable with the transient solver).
    pub fn network(&self) -> &RcNetwork {
        &self.net
    }

    /// Expands a per-block power vector to per-cell (each block's power is
    /// spread uniformly over its cells).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] on a wrong-sized input.
    pub fn expand_power(&self, per_block: &[f64]) -> Result<Vec<f64>, ThermalError> {
        if per_block.len() != self.n_blocks {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.n_blocks,
                got: per_block.len(),
            });
        }
        let cpb = self.cells_per_block();
        let mut out = Vec::with_capacity(per_block.len() * cpb);
        for &p in per_block {
            out.extend(std::iter::repeat_n(p / cpb as f64, cpb));
        }
        Ok(out)
    }

    /// Steady-state cell temperatures under a per-block power vector.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] on a wrong-sized input.
    pub fn steady_state(&self, per_block: &[f64]) -> Result<Vec<f64>, ThermalError> {
        let cell_power = self.expand_power(per_block)?;
        self.net.steady_state(&cell_power)
    }

    /// Reduces per-cell temperatures to the per-block maximum — the
    /// quantity grid mode refines over block mode.
    ///
    /// # Panics
    ///
    /// Panics if `cell_temps` does not hold one entry per cell.
    pub fn max_per_block(&self, cell_temps: &[f64]) -> Vec<f64> {
        let cpb = self.cells_per_block();
        assert_eq!(cell_temps.len(), self.n_blocks * cpb, "cell count mismatch");
        cell_temps
            .chunks(cpb)
            .map(|c| c.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
            .collect()
    }
}

/// Subdivides every block of `plan` into `factor x factor` equal cells.
/// Cells of block `i` occupy indices `i*factor^2 ..`, row-major within the
/// block.
///
/// # Errors
///
/// Propagates floorplan validation (cannot fail for a valid input plan).
pub fn refine(plan: &Floorplan, factor: usize) -> Result<Floorplan, ThermalError> {
    let mut blocks = Vec::with_capacity(plan.len() * factor * factor);
    for b in plan.blocks() {
        let (cw, ch) = (b.w / factor as f64, b.h / factor as f64);
        for gy in 0..factor {
            for gx in 0..factor {
                blocks.push(Block::new(
                    format!("{}_{gx}_{gy}", b.name),
                    b.x + gx as f64 * cw,
                    b.y + gy as f64 * ch,
                    cw,
                    ch,
                ));
            }
        }
    }
    Floorplan::new(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan4() -> Floorplan {
        Floorplan::mesh_grid(4, 4, 4.36e-6).unwrap()
    }

    #[test]
    fn factor_one_matches_block_mode() {
        let plan = plan4();
        let pkg = PackageConfig::date05_defaults();
        let block_net = RcNetwork::build(&plan, &pkg).unwrap();
        let grid = GridModel::build(&plan, &pkg, 1).unwrap();
        let mut power = vec![1.0; 16];
        power[5] = 3.0;
        let tb = block_net.steady_state(&power).unwrap();
        let tg = grid.steady_state(&power).unwrap();
        for (a, b) in tb.iter().zip(&tg) {
            assert!((a - b).abs() < 1e-9, "g=1 grid differs from block model");
        }
    }

    #[test]
    fn refinement_conserves_energy() {
        let plan = plan4();
        let pkg = PackageConfig::date05_defaults();
        let grid = GridModel::build(&plan, &pkg, 3).unwrap();
        let power = vec![1.5; 16];
        let cells = grid.expand_power(&power).unwrap();
        let total_cells: f64 = cells.iter().sum();
        let total_blocks: f64 = power.iter().sum();
        assert!((total_cells - total_blocks).abs() < 1e-9);
    }

    #[test]
    fn grid_peak_close_to_block_peak_for_uniform_block_power() {
        // With power uniform within each block, the refined solution should
        // agree with the block solution to within a fraction of a degree.
        let plan = plan4();
        let pkg = PackageConfig::date05_defaults();
        let block_net = RcNetwork::build(&plan, &pkg).unwrap();
        let grid = GridModel::build(&plan, &pkg, 2).unwrap();
        let mut power = vec![1.0; 16];
        power[0] = 3.5;
        let tb = block_net.steady_state(&power).unwrap();
        let tg = grid.steady_state(&power).unwrap();
        let per_block_max = grid.max_per_block(&tg);
        for (i, (a, b)) in tb.iter().zip(&per_block_max).enumerate() {
            assert!(
                (a - b).abs() < 1.5,
                "block {i}: block-mode {a:.2} vs grid max {b:.2}"
            );
        }
    }

    #[test]
    fn grid_resolves_intra_block_gradient() {
        // A hot block adjacent to a cool region: the cell nearest the cool
        // neighbour should be cooler than the far cell.
        let plan = plan4();
        let pkg = PackageConfig::date05_defaults();
        let grid = GridModel::build(&plan, &pkg, 3).unwrap();
        let mut power = vec![0.2; 16];
        power[0] = 4.0; // hot corner block at (0,0)
        let t = grid.steady_state(&power).unwrap();
        // Block 0's cells are indices 0..9 (row-major within block).
        let near_neighbor = t[2 + 2 * 3]; // cell (2,2): closest to blocks 1 and 4
        let far_corner = t[0]; // cell (0,0): die corner
        assert!(
            far_corner > near_neighbor,
            "corner cell {far_corner:.3} should exceed interior-facing cell {near_neighbor:.3}"
        );
    }

    #[test]
    fn invalid_factors_rejected() {
        let plan = plan4();
        let pkg = PackageConfig::date05_defaults();
        assert!(GridModel::build(&plan, &pkg, 0).is_err());
        assert!(GridModel::build(&plan, &pkg, 50).is_err());
    }

    #[test]
    fn refine_geometry() {
        let plan = plan4();
        let refined = refine(&plan, 2).unwrap();
        assert_eq!(refined.len(), 64);
        assert!((refined.total_area() - plan.total_area()).abs() < 1e-12);
    }
}
