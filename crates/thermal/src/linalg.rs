//! Minimal dense linear algebra: row-major matrices and LU factorization.
//!
//! The thermal networks built here are small (tens of nodes), so a dense
//! partial-pivoting LU is both simple and fast — and avoids pulling a large
//! linear-algebra dependency into the workspace (see DESIGN.md §3).

use crate::error::ThermalError;
use std::fmt;

/// A dense, row-major `n x n` or `n x m` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        DMat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (yi, row) in y.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
        y
    }

    /// LU-factorizes the matrix with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] if a pivot collapses to
    /// (numerical) zero.
    pub fn lu(&self) -> Result<Lu, ThermalError> {
        assert_eq!(self.rows, self.cols, "LU requires a square matrix");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot selection.
            let mut p = k;
            let mut pmax = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < 1e-300 {
                return Err(ThermalError::SingularSystem);
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                a[i * n + k] = factor;
                for j in (k + 1)..n {
                    a[i * n + j] -= factor * a[k * n + j];
                }
            }
        }
        Ok(Lu { n, a, piv })
    }
}

impl std::ops::Index<(usize, usize)> for DMat {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.4e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// LU factors of a square matrix, reusable for many right-hand sides.
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    /// Combined L (unit diagonal, below) and U (on/above diagonal).
    a: Vec<f64>,
    piv: Vec<usize>,
}

impl Lu {
    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "dimension mismatch");
        let n = self.n;
        // Apply the row permutation.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut acc = x[i];
            for (l, xj) in self.a[i * n..i * n + i].iter().zip(&x[..i]) {
                acc -= l * xj;
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (u, xj) in self.a[i * n + i + 1..(i + 1) * n].iter().zip(&x[i + 1..]) {
                acc -= u * xj;
            }
            x[i] = acc / self.a[i * n + i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} != {y} (tol {tol})");
        }
    }

    #[test]
    fn identity_solve() {
        let lu = DMat::identity(4).lu().unwrap();
        let b = vec![1.0, -2.0, 3.5, 0.0];
        assert_close(&lu.solve(&b), &b, 1e-14);
    }

    #[test]
    fn known_2x2() {
        // [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
        let m = DMat::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = m.lu().unwrap().solve(&[3.0, 5.0]);
        assert_close(&x, &[0.8, 1.4], 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero forces a row swap.
        let m = DMat::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = m.lu().unwrap().solve(&[2.0, 3.0]);
        assert_close(&x, &[3.0, 2.0], 1e-14);
    }

    #[test]
    fn singular_detected() {
        let m = DMat::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.lu().unwrap_err(), ThermalError::SingularSystem);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = DMat::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_close(&m.matvec(&[1.0, 1.0, 1.0]), &[6.0, 15.0], 1e-14);
    }

    #[test]
    fn solve_then_matvec_roundtrip_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for n in [3usize, 8, 20] {
            let mut m = DMat::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    m[(i, j)] = rng.gen_range(-1.0..1.0);
                }
                m[(i, i)] += n as f64; // diagonally dominant => nonsingular
            }
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let b = m.matvec(&xs);
            let got = m.lu().unwrap().solve(&b);
            assert_close(&got, &xs, 1e-9);
        }
    }

    #[test]
    fn display_prints_all_entries() {
        let m = DMat::identity(2);
        let s = m.to_string();
        assert_eq!(s.lines().count(), 2);
    }
}
