//! RC-equivalent thermal network construction and steady-state solution.
//!
//! Node layout for a floorplan with `n` blocks:
//!
//! | index            | node                                   |
//! |------------------|----------------------------------------|
//! | `0 .. n`         | die blocks (power is injected here)    |
//! | `n .. 2n`        | TIM node under each block              |
//! | `2n`             | heat-spreader centre                   |
//! | `2n+1 .. 2n+5`   | spreader periphery (N, E, S, W)        |
//! | `2n+5`           | heat-sink base (convects to ambient)   |
//!
//! Lateral die conduction couples adjacent blocks proportionally to their
//! shared edge length over centroid distance; vertical conduction runs
//! die → TIM → spreader → sink → ambient, exactly the topology of HotSpot's
//! block model (with the spreader collapsed to five nodes).

use crate::error::ThermalError;
use crate::floorplan::Floorplan;
use crate::linalg::{DMat, Lu};
use crate::package::PackageConfig;
use crate::sparse::{CsrMat, TripletBuilder};

/// A fully built thermal network with pre-factored steady-state matrix.
///
/// The conductance Laplacian is assembled directly in sparse (CSR) form —
/// ~7 nonzeros per row — which is what the transient integrators step with;
/// the dense copy exists only to LU-factor the steady-state system once.
#[derive(Debug, Clone)]
pub struct RcNetwork {
    n_blocks: usize,
    n_nodes: usize,
    /// `G` Laplacian plus ambient conductance on the diagonal (dense copy,
    /// kept for the steady-state factorization and inspection).
    a: DMat,
    /// The same matrix in CSR form: the transient stepping operator.
    a_sparse: CsrMat,
    /// Per-node conductance to ambient (only the sink node is non-zero).
    g_amb: Vec<f64>,
    /// Per-node heat capacity in J/K.
    cap: Vec<f64>,
    ambient: f64,
    lu: Lu,
}

impl RcNetwork {
    /// Builds the thermal network for `plan` under package `pkg`.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidPackage`] if `pkg` fails validation.
    /// * [`ThermalError::SingularSystem`] if the network is degenerate
    ///   (cannot happen for a valid floorplan; defensive).
    pub fn build(plan: &Floorplan, pkg: &PackageConfig) -> Result<Self, ThermalError> {
        pkg.validate()?;
        let n = plan.len();
        let n_nodes = 2 * n + 5 + 1;
        let sp_center = 2 * n;
        let sp_periph = [2 * n + 1, 2 * n + 2, 2 * n + 3, 2 * n + 4];
        let sink = 2 * n + 5;

        let mut g = TripletBuilder::new(n_nodes, n_nodes);
        let add = |g: &mut TripletBuilder, i: usize, j: usize, cond: f64| {
            g.add_conductance(i, j, cond);
        };

        // Lateral conduction between adjacent die blocks.
        for (i, j, edge) in plan.adjacencies() {
            let (cx_i, cy_i) = plan.blocks()[i].centroid();
            let (cx_j, cy_j) = plan.blocks()[j].centroid();
            let dist = ((cx_i - cx_j).powi(2) + (cy_i - cy_j).powi(2)).sqrt();
            let cond = pkg.die.conductivity * pkg.t_die * edge / dist;
            add(&mut g, i, j, cond);
        }

        let die_area = plan.total_area();
        let sp_area = pkg.spreader_side * pkg.spreader_side;
        let periph_area = ((sp_area - die_area) / 4.0).max(sp_area * 0.05);

        for (i, b) in plan.blocks().iter().enumerate() {
            let area = b.area();
            // die block -> its TIM node: half the die plus half the TIM.
            let r_down = pkg.die.slab_resistance(pkg.t_die / 2.0, area)
                + pkg.tim.slab_resistance(pkg.t_tim / 2.0, area);
            add(&mut g, i, n + i, 1.0 / r_down);
            // TIM node -> spreader centre: rest of the TIM plus spreading
            // constriction into the copper.
            let r_sp = pkg.tim.slab_resistance(pkg.t_tim / 2.0, area)
                + pkg.spreader.slab_resistance(pkg.t_spreader / 2.0, area);
            add(&mut g, n + i, sp_center, 1.0 / r_sp);
        }

        // Spreader centre <-> periphery lateral conduction.
        let r_lat_sp = (pkg.spreader_side / 4.0)
            / (pkg.spreader.conductivity * pkg.t_spreader * pkg.spreader_side);
        for &p in &sp_periph {
            add(&mut g, sp_center, p, 1.0 / r_lat_sp);
        }

        // Vertical into the sink base.
        let r_center_sink = pkg.spreader.slab_resistance(pkg.t_spreader / 2.0, die_area)
            + pkg.sink.slab_resistance(pkg.t_sink / 2.0, die_area);
        add(&mut g, sp_center, sink, 1.0 / r_center_sink);
        for &p in &sp_periph {
            let r = pkg
                .spreader
                .slab_resistance(pkg.t_spreader / 2.0, periph_area)
                + pkg.sink.slab_resistance(pkg.t_sink / 2.0, periph_area);
            add(&mut g, p, sink, 1.0 / r);
        }

        // Sink -> ambient convection.
        let mut g_amb = vec![0.0; n_nodes];
        g_amb[sink] = 1.0 / pkg.r_convec;
        g.add(sink, sink, g_amb[sink]);

        // Heat capacities.
        let mut cap = vec![0.0; n_nodes];
        for (i, b) in plan.blocks().iter().enumerate() {
            cap[i] = pkg.cap_factor * pkg.die.slab_capacity(pkg.t_die, b.area());
            cap[n + i] = pkg.cap_factor * pkg.tim.slab_capacity(pkg.t_tim, b.area());
        }
        cap[sp_center] = pkg.cap_factor * pkg.spreader.slab_capacity(pkg.t_spreader, die_area);
        for &p in &sp_periph {
            cap[p] = pkg.cap_factor * pkg.spreader.slab_capacity(pkg.t_spreader, periph_area);
        }
        cap[sink] = pkg.cap_factor
            * pkg
                .sink
                .slab_capacity(pkg.t_sink, pkg.sink_side * pkg.sink_side)
            + pkg.c_convec;

        let a_sparse = g.build();
        let a = a_sparse.to_dense();
        let lu = a.lu()?;
        Ok(RcNetwork {
            n_blocks: n,
            n_nodes,
            a,
            a_sparse,
            g_amb,
            cap,
            ambient: pkg.ambient_celsius,
            lu,
        })
    }

    /// Number of floorplan (power-bearing) blocks.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Total number of thermal nodes (blocks + package nodes).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Ambient temperature in °C.
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// Per-node heat capacities (J/K), in node-index order.
    pub fn capacities(&self) -> &[f64] {
        &self.cap
    }

    /// The conductance matrix (Laplacian + ambient diagonal), densely.
    pub fn conductance(&self) -> &DMat {
        &self.a
    }

    /// The conductance matrix in CSR form (what the transient solvers
    /// multiply by; O(nnz) per matvec instead of O(n²)).
    pub fn conductance_sparse(&self) -> &CsrMat {
        &self.a_sparse
    }

    /// Per-node conductance to ambient.
    pub fn ambient_conductance(&self) -> &[f64] {
        &self.g_amb
    }

    /// Expands a per-block power vector to a full per-node source vector,
    /// adding the ambient injection `g_amb * T_amb`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] on a wrong-sized input.
    pub fn rhs(&self, power_blocks: &[f64]) -> Result<Vec<f64>, ThermalError> {
        let mut b = vec![0.0; self.n_nodes];
        self.rhs_into(power_blocks, &mut b)?;
        Ok(b)
    }

    /// [`RcNetwork::rhs`] into a caller-owned buffer (the allocation-free
    /// path the transient integrator steps with).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] on a wrong-sized input.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.n_nodes()`.
    pub fn rhs_into(&self, power_blocks: &[f64], out: &mut [f64]) -> Result<(), ThermalError> {
        if power_blocks.len() != self.n_blocks {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.n_blocks,
                got: power_blocks.len(),
            });
        }
        assert_eq!(out.len(), self.n_nodes, "rhs buffer length mismatch");
        out[..self.n_blocks].copy_from_slice(power_blocks);
        out[self.n_blocks..].fill(0.0);
        for (bi, g) in out.iter_mut().zip(&self.g_amb) {
            *bi += g * self.ambient;
        }
        Ok(())
    }

    /// Steady-state temperatures of the die blocks, in °C.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] on a wrong-sized input.
    pub fn steady_state(&self, power_blocks: &[f64]) -> Result<Vec<f64>, ThermalError> {
        Ok(self.steady_state_full(power_blocks)?[..self.n_blocks].to_vec())
    }

    /// Steady-state temperatures of every node (blocks first), in °C.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] on a wrong-sized input.
    pub fn steady_state_full(&self, power_blocks: &[f64]) -> Result<Vec<f64>, ThermalError> {
        let b = self.rhs(power_blocks)?;
        Ok(self.lu.solve(&b))
    }
}

/// The peak (maximum) of a temperature slice, ignoring NaNs.
pub fn peak(temps: &[f64]) -> f64 {
    temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net4() -> RcNetwork {
        let plan = Floorplan::mesh_grid(4, 4, 4.36e-6).unwrap();
        RcNetwork::build(&plan, &PackageConfig::date05_defaults()).unwrap()
    }

    #[test]
    fn zero_power_sits_at_ambient() {
        let net = net4();
        let t = net.steady_state_full(&[0.0; 16]).unwrap();
        for v in t {
            assert!((v - 40.0).abs() < 1e-9, "expected ambient, got {v}");
        }
    }

    #[test]
    fn uniform_power_gives_uniform_die_temps() {
        // In the block model every die block shares the same vertical path
        // into the spreader, so a perfectly uniform power map produces no
        // lateral gradient at all — gradients come from power non-uniformity
        // (see `hotspot_block_is_hottest` and `center_spreads_laterally`).
        let net = net4();
        let t = net.steady_state(&[1.5; 16]).unwrap();
        for &v in &t {
            assert!((v - t[0]).abs() < 1e-9, "uniform power must be isothermal");
        }
        assert!(t.iter().all(|&v| v > 41.0));
    }

    #[test]
    fn center_spreads_laterally() {
        // A lone hot block is cooler at the die centre than at a corner:
        // four lateral neighbours to spread into instead of two.
        let net = net4();
        let mut at_corner = vec![0.5; 16];
        at_corner[0] = 4.0;
        let mut at_center = vec![0.5; 16];
        at_center[5] = 4.0;
        let peak_corner = peak(&net.steady_state(&at_corner).unwrap());
        let peak_center = peak(&net.steady_state(&at_center).unwrap());
        assert!(
            peak_center < peak_corner,
            "center {peak_center} not cooler than corner {peak_corner}"
        );
    }

    #[test]
    fn uniform_power_is_symmetric() {
        let net = net4();
        let t = net.steady_state(&[2.0; 16]).unwrap();
        // Four-fold symmetry: corners equal.
        let corners = [t[0], t[3], t[12], t[15]];
        for c in corners {
            assert!((c - t[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn energy_conservation_at_steady_state() {
        let net = net4();
        let power = vec![1.0; 16];
        let t = net.steady_state_full(&power).unwrap();
        let out: f64 = t
            .iter()
            .zip(net.ambient_conductance())
            .map(|(ti, g)| g * (ti - net.ambient()))
            .sum();
        let total: f64 = power.iter().sum();
        assert!(
            (out - total).abs() < 1e-8,
            "heat out {out} != heat in {total}"
        );
    }

    #[test]
    fn superposition_holds() {
        let net = net4();
        let mut p1 = vec![0.0; 16];
        p1[0] = 3.0;
        let mut p2 = vec![0.0; 16];
        p2[10] = 2.0;
        let p12: Vec<f64> = p1.iter().zip(&p2).map(|(a, b)| a + b).collect();
        let t1 = net.steady_state(&p1).unwrap();
        let t2 = net.steady_state(&p2).unwrap();
        let t12 = net.steady_state(&p12).unwrap();
        for i in 0..16 {
            let lhs = t12[i] - net.ambient();
            let rhs = (t1[i] - net.ambient()) + (t2[i] - net.ambient());
            assert!((lhs - rhs).abs() < 1e-9);
        }
    }

    #[test]
    fn hotspot_block_is_hottest() {
        let net = net4();
        let mut p = vec![0.5; 16];
        p[6] = 4.0;
        let t = net.steady_state(&p).unwrap();
        let hottest = t
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(hottest, 6);
    }

    #[test]
    fn more_power_means_hotter() {
        let net = net4();
        let t1 = net.steady_state(&[1.0; 16]).unwrap();
        let t2 = net.steady_state(&[2.0; 16]).unwrap();
        for (a, b) in t1.iter().zip(&t2) {
            assert!(b > a);
        }
    }

    #[test]
    fn wrong_power_length_rejected() {
        let net = net4();
        assert!(matches!(
            net.steady_state(&[1.0; 3]),
            Err(ThermalError::PowerLengthMismatch {
                expected: 16,
                got: 3
            })
        ));
    }

    #[test]
    fn paper_power_band_reaches_paper_temperatures() {
        // ~1.4-2 W per block should land in the paper's 72-86 C band.
        let net = net4();
        let t = net.steady_state(&[1.7; 16]).unwrap();
        let pk = peak(&t);
        assert!(
            (60.0..100.0).contains(&pk),
            "peak {pk} outside plausible band"
        );
    }

    #[test]
    fn sparse_conductance_matches_dense_and_is_sparse() {
        let net = net4();
        let s = net.conductance_sparse();
        let d = net.conductance();
        assert_eq!(s.rows(), d.rows());
        assert_eq!(s.cols(), d.cols());
        for i in 0..s.rows() {
            for j in 0..s.cols() {
                assert!(
                    (s.get(i, j) - d[(i, j)]).abs() < 1e-15,
                    "mismatch at ({i}, {j})"
                );
            }
        }
        // A handful of nonzeros per row on average, far below n².
        assert!(s.nnz() < 10 * s.rows(), "nnz {} too dense", s.nnz());
        // Symmetric (CG requires it).
        for i in 0..s.rows() {
            for j in 0..s.cols() {
                assert_eq!(s.get(i, j), s.get(j, i));
            }
        }
    }

    #[test]
    fn rhs_into_matches_rhs() {
        let net = net4();
        let p: Vec<f64> = (0..16).map(|i| 0.3 + 0.1 * i as f64).collect();
        let a = net.rhs(&p).unwrap();
        let mut b = vec![7.0; net.n_nodes()]; // stale garbage must be overwritten
        net.rhs_into(&p, &mut b).unwrap();
        assert_eq!(a, b);
        assert!(net.rhs_into(&[0.0; 3], &mut b).is_err());
    }

    #[test]
    fn capacities_positive_and_sink_largest() {
        let net = net4();
        assert!(net.capacities().iter().all(|&c| c > 0.0));
        let sink = *net.capacities().last().unwrap();
        assert!(net.capacities()[..net.n_nodes() - 1]
            .iter()
            .all(|&c| c < sink));
    }
}
