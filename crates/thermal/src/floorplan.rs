//! Floorplans: rectangular blocks on the die.
//!
//! The paper takes floorplans "directly from the layout of our sample
//! chips": a regular grid of functional units of 4.36 mm² each.
//! [`Floorplan::mesh_grid`] builds exactly that; arbitrary rectilinear
//! floorplans are supported for non-grid dies.

use crate::error::ThermalError;
use serde::{Deserialize, Serialize};

/// Geometric tolerance for adjacency tests, in metres (1 nm).
const EPS: f64 = 1e-9;

/// An axis-aligned rectangular floorplan block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Block name (e.g. `pe_2_1`).
    pub name: String,
    /// West edge, metres.
    pub x: f64,
    /// South edge, metres.
    pub y: f64,
    /// Width, metres.
    pub w: f64,
    /// Height, metres.
    pub h: f64,
}

impl Block {
    /// Creates a block.
    pub fn new(name: impl Into<String>, x: f64, y: f64, w: f64, h: f64) -> Self {
        Block {
            name: name.into(),
            x,
            y,
            w,
            h,
        }
    }

    /// Block area in m².
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Centroid `(x, y)` in metres.
    pub fn centroid(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Length of the edge shared with `other` (0 if not adjacent).
    ///
    /// Two blocks are adjacent when they touch along a segment of positive
    /// length (corner contact does not count).
    pub fn shared_edge(&self, other: &Block) -> f64 {
        let x_overlap = (self.x + self.w).min(other.x + other.w) - self.x.max(other.x);
        let y_overlap = (self.y + self.h).min(other.y + other.h) - self.y.max(other.y);
        let touch_x =
            ((self.x + self.w) - other.x).abs() < EPS || ((other.x + other.w) - self.x).abs() < EPS;
        let touch_y =
            ((self.y + self.h) - other.y).abs() < EPS || ((other.y + other.h) - self.y).abs() < EPS;
        if touch_x && y_overlap > EPS {
            y_overlap
        } else if touch_y && x_overlap > EPS {
            x_overlap
        } else {
            0.0
        }
    }

    /// `true` if the interiors of the two blocks overlap.
    pub fn overlaps(&self, other: &Block) -> bool {
        let x_overlap = (self.x + self.w).min(other.x + other.w) - self.x.max(other.x);
        let y_overlap = (self.y + self.h).min(other.y + other.h) - self.y.max(other.y);
        x_overlap > EPS && y_overlap > EPS
    }
}

/// A die floorplan: a set of non-overlapping blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    blocks: Vec<Block>,
}

impl Floorplan {
    /// Creates a floorplan from blocks, validating geometry.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::EmptyFloorplan`] for an empty block list.
    /// * [`ThermalError::DegenerateBlock`] for non-positive dimensions.
    /// * [`ThermalError::OverlappingBlocks`] if any two blocks overlap.
    pub fn new(blocks: Vec<Block>) -> Result<Self, ThermalError> {
        if blocks.is_empty() {
            return Err(ThermalError::EmptyFloorplan);
        }
        for (i, b) in blocks.iter().enumerate() {
            if !(b.w > 0.0 && b.h > 0.0 && b.w.is_finite() && b.h.is_finite()) {
                return Err(ThermalError::DegenerateBlock { index: i });
            }
        }
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                if blocks[i].overlaps(&blocks[j]) {
                    return Err(ThermalError::OverlappingBlocks { a: i, b: j });
                }
            }
        }
        Ok(Floorplan { blocks })
    }

    /// Builds a `width x height` grid of square blocks, each of
    /// `unit_area_m2` (the paper's chips: `mesh_grid(4, 4, 4.36e-6)` and
    /// `mesh_grid(5, 5, 4.36e-6)`).
    ///
    /// Block `(x, y)` is named `pe_x_y` and indexed row-major, matching the
    /// node-id order of `hotnoc_noc::Mesh`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyFloorplan`] for zero dimensions or
    /// [`ThermalError::DegenerateBlock`] for a non-positive area.
    pub fn mesh_grid(width: usize, height: usize, unit_area_m2: f64) -> Result<Self, ThermalError> {
        if width == 0 || height == 0 {
            return Err(ThermalError::EmptyFloorplan);
        }
        if !(unit_area_m2 > 0.0 && unit_area_m2.is_finite()) {
            return Err(ThermalError::DegenerateBlock { index: 0 });
        }
        let side = unit_area_m2.sqrt();
        let mut blocks = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                blocks.push(Block::new(
                    format!("pe_{x}_{y}"),
                    x as f64 * side,
                    y as f64 * side,
                    side,
                    side,
                ));
            }
        }
        Floorplan::new(blocks)
    }

    /// The blocks, in index order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the floorplan has no blocks (unreachable via constructors).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total die area in m².
    pub fn total_area(&self) -> f64 {
        self.blocks.iter().map(Block::area).sum()
    }

    /// All adjacent block pairs `(i, j, shared_edge_len)` with `i < j`.
    pub fn adjacencies(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for i in 0..self.blocks.len() {
            for j in (i + 1)..self.blocks.len() {
                let e = self.blocks[i].shared_edge(&self.blocks[j]);
                if e > 0.0 {
                    out.push((i, j, e));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_right_count_and_area() {
        let fp = Floorplan::mesh_grid(4, 4, 4.36e-6).unwrap();
        assert_eq!(fp.len(), 16);
        assert!((fp.total_area() - 16.0 * 4.36e-6).abs() < 1e-12);
        assert_eq!(fp.blocks()[0].name, "pe_0_0");
        assert_eq!(fp.blocks()[5].name, "pe_1_1"); // row-major
    }

    #[test]
    fn grid_adjacency_count() {
        // 4x4 grid: 2*4*3 = 24 internal edges.
        let fp = Floorplan::mesh_grid(4, 4, 1e-6).unwrap();
        assert_eq!(fp.adjacencies().len(), 24);
        // 5x5 grid: 2*5*4 = 40.
        let fp5 = Floorplan::mesh_grid(5, 5, 1e-6).unwrap();
        assert_eq!(fp5.adjacencies().len(), 40);
    }

    #[test]
    fn shared_edge_values() {
        let a = Block::new("a", 0.0, 0.0, 1.0, 1.0);
        let b = Block::new("b", 1.0, 0.0, 1.0, 1.0);
        let c = Block::new("c", 1.0, 1.0, 1.0, 1.0); // corner contact with a
        let d = Block::new("d", 5.0, 5.0, 1.0, 1.0);
        assert!((a.shared_edge(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.shared_edge(&c), 0.0);
        assert_eq!(a.shared_edge(&d), 0.0);
        assert_eq!(b.shared_edge(&c), 1.0); // vertical adjacency
    }

    #[test]
    fn overlap_detected() {
        let a = Block::new("a", 0.0, 0.0, 2.0, 2.0);
        let b = Block::new("b", 1.0, 1.0, 2.0, 2.0);
        assert!(a.overlaps(&b));
        assert!(Floorplan::new(vec![a, b]).is_err());
    }

    #[test]
    fn degenerate_rejected() {
        let err = Floorplan::new(vec![Block::new("z", 0.0, 0.0, 0.0, 1.0)]).unwrap_err();
        assert!(matches!(err, ThermalError::DegenerateBlock { index: 0 }));
        assert!(Floorplan::new(vec![]).is_err());
        assert!(Floorplan::mesh_grid(0, 3, 1.0).is_err());
        assert!(Floorplan::mesh_grid(3, 3, -1.0).is_err());
    }

    #[test]
    fn centroid_and_area() {
        let b = Block::new("b", 1.0, 2.0, 3.0, 4.0);
        assert_eq!(b.centroid(), (2.5, 4.0));
        assert_eq!(b.area(), 12.0);
    }

    #[test]
    fn paper_block_size() {
        // 4.36 mm^2 blocks have ~2.088 mm sides.
        let fp = Floorplan::mesh_grid(2, 2, 4.36e-6).unwrap();
        let side = fp.blocks()[0].w;
        assert!((side - 2.088e-3).abs() < 1e-5);
    }
}
