//! Transient thermal integration.
//!
//! Two integrators are provided:
//!
//! * **Backward Euler** (default): unconditionally stable; the sparse
//!   system `(C/dt + G) T' = P + C/dt·T` is solved each step by
//!   Jacobi-preconditioned conjugate gradient, warm-started from the
//!   current temperatures. Successive steps move the state very little, so
//!   the solve typically converges in a handful of O(nnz) matvecs — the
//!   cost scales with the network's nonzeros, not n². This is what the
//!   migration co-simulation uses (many thousands of steps at a fixed
//!   `dt`).
//! * **RK4**: classic explicit integration via sparse matvec; useful to
//!   cross-validate the implicit solver at small steps (the property tests
//!   do exactly that).

use crate::error::ThermalError;
use crate::rc_model::RcNetwork;
use crate::sparse::{CgSolver, CsrMat};

/// Time integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Implicit backward Euler, solved per step by warm-started
    /// conjugate gradient over the sparse system matrix.
    #[default]
    BackwardEuler,
    /// Explicit 4th-order Runge-Kutta.
    Rk4,
}

/// A transient simulation: temperature state advanced step by step under a
/// (possibly time-varying) per-block power vector.
#[derive(Debug, Clone)]
pub struct TransientSim<'a> {
    net: &'a RcNetwork,
    dt: f64,
    integrator: Integrator,
    temps: Vec<f64>,
    /// Sparse `(C/dt + G)` and its CG solver, only for backward Euler.
    be: Option<(CsrMat, CgSolver)>,
    /// Scratch buffers reused across steps (RHS, RK4 stages).
    rhs: Vec<f64>,
    stage: Vec<Vec<f64>>,
    time: f64,
}

impl<'a> TransientSim<'a> {
    /// Creates a simulation over `net` with step `dt` seconds, starting with
    /// every node at ambient.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidStep`] for a non-positive or non-finite `dt`.
    /// * [`ThermalError::SingularSystem`] if the implicit system is not SPD
    ///   (defensive; cannot happen for a valid RC network).
    pub fn new(net: &'a RcNetwork, dt: f64, integrator: Integrator) -> Result<Self, ThermalError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ThermalError::InvalidStep {
                what: "dt must be positive and finite",
            });
        }
        let n = net.n_nodes();
        let be = match integrator {
            Integrator::BackwardEuler => {
                let c_over_dt: Vec<f64> = net.capacities().iter().map(|c| c / dt).collect();
                let m = net.conductance_sparse().with_diagonal_added(&c_over_dt);
                let solver = CgSolver::new(&m)?;
                Some((m, solver))
            }
            Integrator::Rk4 => None,
        };
        let stage_bufs = match integrator {
            Integrator::BackwardEuler => 1, // the candidate next state
            Integrator::Rk4 => 6,           // k1..k4, the staged y, and one matvec out
        };
        Ok(TransientSim {
            net,
            dt,
            integrator,
            temps: vec![net.ambient(); n],
            be,
            rhs: vec![0.0; n],
            stage: (0..stage_bufs).map(|_| vec![0.0; n]).collect(),
            time: 0.0,
        })
    }

    /// Initializes the state from the steady-state solution of
    /// `power_blocks` (the usual starting point: the chip has been running
    /// its base placement long enough to thermally settle).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] on a wrong-sized input.
    pub fn init_from_steady(&mut self, power_blocks: &[f64]) -> Result<(), ThermalError> {
        self.temps = self.net.steady_state_full(power_blocks)?;
        self.time = 0.0;
        Ok(())
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The time step in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// All node temperatures (°C), blocks first.
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Die-block temperatures only (°C).
    pub fn block_temps(&self) -> &[f64] {
        &self.temps[..self.net.n_blocks()]
    }

    /// Peak die-block temperature (°C).
    pub fn peak_block_temp(&self) -> f64 {
        crate::rc_model::peak(self.block_temps())
    }

    /// Mean die-block temperature (°C).
    pub fn mean_block_temp(&self) -> f64 {
        let b = self.block_temps();
        b.iter().sum::<f64>() / b.len() as f64
    }

    /// Advances one step of `dt` under the given per-block power.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerLengthMismatch`] on a wrong-sized input.
    /// * [`ThermalError::NotConverged`] if the implicit solve breaks down
    ///   (defensive; the system is SPD by construction).
    pub fn step(&mut self, power_blocks: &[f64]) -> Result<(), ThermalError> {
        let _t = hotnoc_obs::prof::scope("thermal/step");
        let mut rhs = std::mem::take(&mut self.rhs);
        let result = self.step_with_rhs(power_blocks, &mut rhs);
        self.rhs = rhs;
        result?;
        self.time += self.dt;
        Ok(())
    }

    fn step_with_rhs(&mut self, power_blocks: &[f64], rhs: &mut [f64]) -> Result<(), ThermalError> {
        self.net.rhs_into(power_blocks, rhs)?;
        match self.integrator {
            Integrator::BackwardEuler => {
                for ((r, &c), &t) in rhs.iter_mut().zip(self.net.capacities()).zip(&self.temps) {
                    *r += c / self.dt * t;
                }
                // Warm start: the previous temperatures are an excellent
                // initial guess, so CG usually converges in a few matvecs.
                // Solve into the scratch buffer and commit only on success,
                // so a failed step leaves the state untouched.
                let (m, solver) = self.be.as_mut().expect("BE state exists");
                let [next] = &mut self.stage[..] else {
                    unreachable!("BE owns one stage buffer");
                };
                next.copy_from_slice(&self.temps);
                solver.solve(m, rhs, next)?;
                self.temps.copy_from_slice(next);
            }
            Integrator::Rk4 => {
                let g = self.net.conductance_sparse();
                let cap = self.net.capacities();
                let n = self.temps.len();
                let h = self.dt;
                let [k1, k2, k3, k4, ys, gt] = &mut self.stage[..] else {
                    unreachable!("RK4 owns six stage buffers");
                };
                let deriv = |t: &[f64], gt: &mut Vec<f64>, out: &mut Vec<f64>| {
                    g.matvec_into(t, gt);
                    for i in 0..n {
                        out[i] = (rhs[i] - gt[i]) / cap[i];
                    }
                };
                deriv(&self.temps, gt, k1);
                for i in 0..n {
                    ys[i] = self.temps[i] + h / 2.0 * k1[i];
                }
                deriv(&ys[..], gt, k2);
                for i in 0..n {
                    ys[i] = self.temps[i] + h / 2.0 * k2[i];
                }
                deriv(&ys[..], gt, k3);
                for i in 0..n {
                    ys[i] = self.temps[i] + h * k3[i];
                }
                deriv(&ys[..], gt, k4);
                for i in 0..n {
                    self.temps[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
                }
            }
        }
        Ok(())
    }

    /// Runs `steps` steps under constant power.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] on a wrong-sized input.
    pub fn run(&mut self, power_blocks: &[f64], steps: usize) -> Result<(), ThermalError> {
        for _ in 0..steps {
            self.step(power_blocks)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::package::PackageConfig;

    fn net() -> RcNetwork {
        let plan = Floorplan::mesh_grid(4, 4, 4.36e-6).unwrap();
        RcNetwork::build(&plan, &PackageConfig::date05_defaults()).unwrap()
    }

    #[test]
    fn rejects_bad_dt() {
        let n = net();
        assert!(TransientSim::new(&n, 0.0, Integrator::BackwardEuler).is_err());
        assert!(TransientSim::new(&n, f64::NAN, Integrator::Rk4).is_err());
    }

    #[test]
    fn starts_at_ambient() {
        let n = net();
        let sim = TransientSim::new(&n, 1e-5, Integrator::BackwardEuler).unwrap();
        assert!(sim.temps().iter().all(|&t| (t - 40.0).abs() < 1e-12));
        assert_eq!(sim.time(), 0.0);
    }

    #[test]
    fn warms_up_monotonically_under_constant_power() {
        let n = net();
        let mut sim = TransientSim::new(&n, 1e-4, Integrator::BackwardEuler).unwrap();
        let p = vec![1.5; 16];
        let mut last = sim.peak_block_temp();
        for _ in 0..50 {
            sim.run(&p, 10).unwrap();
            let now = sim.peak_block_temp();
            assert!(now >= last - 1e-12, "peak decreased while heating");
            last = now;
        }
        assert!(last > 40.5);
    }

    #[test]
    fn die_settles_toward_steady_state() {
        // The die and TIM settle within tens of ms; the sink approaches its
        // steady value exponentially. Initialize the sim from the steady
        // state and verify it stays there (fixed point of the integrator).
        let n = net();
        let p = vec![1.5; 16];
        let steady = n.steady_state(&p).unwrap();
        let mut sim = TransientSim::new(&n, 1e-4, Integrator::BackwardEuler).unwrap();
        sim.init_from_steady(&p).unwrap();
        sim.run(&p, 500).unwrap();
        for (a, b) in sim.block_temps().iter().zip(&steady) {
            assert!((a - b).abs() < 1e-6, "drifted from steady: {a} vs {b}");
        }
    }

    #[test]
    fn cooling_after_power_off() {
        let n = net();
        let p = vec![2.0; 16];
        let mut sim = TransientSim::new(&n, 1e-4, Integrator::BackwardEuler).unwrap();
        sim.init_from_steady(&p).unwrap();
        let hot = sim.peak_block_temp();
        sim.run(&[0.0; 16], 2_000).unwrap();
        let cooled = sim.peak_block_temp();
        assert!(cooled < hot - 5.0, "did not cool: {hot} -> {cooled}");
        assert!(cooled >= 40.0 - 1e-9, "cooled below ambient");
    }

    #[test]
    fn rk4_matches_backward_euler_at_small_dt() {
        let n = net();
        let p = vec![1.8; 16];
        let dt = 2e-5;
        let mut be = TransientSim::new(&n, dt, Integrator::BackwardEuler).unwrap();
        let mut rk = TransientSim::new(&n, dt, Integrator::Rk4).unwrap();
        for _ in 0..500 {
            be.step(&p).unwrap();
            rk.step(&p).unwrap();
        }
        for (a, b) in be.block_temps().iter().zip(rk.block_temps()) {
            assert!((a - b).abs() < 0.05, "BE {a} vs RK4 {b}");
        }
    }

    #[test]
    fn backward_euler_stable_at_huge_dt() {
        let n = net();
        let mut sim = TransientSim::new(&n, 10.0, Integrator::BackwardEuler).unwrap();
        let p = vec![1.5; 16];
        // 3000 s covers many sink time constants (tau_sink ~ 200 s).
        sim.run(&p, 300).unwrap();
        let steady = n.steady_state(&p).unwrap();
        // Giant implicit steps converge straight to steady state.
        for (a, b) in sim.block_temps().iter().zip(&steady) {
            assert!((a - b).abs() < 0.5, "{a} vs steady {b}");
        }
        assert!(sim.temps().iter().all(|t| t.is_finite()));
    }

    #[test]
    fn time_advances() {
        let n = net();
        let mut sim = TransientSim::new(&n, 1e-3, Integrator::BackwardEuler).unwrap();
        sim.run(&[0.0; 16], 10).unwrap();
        assert!((sim.time() - 1e-2).abs() < 1e-12);
        assert!((sim.dt() - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn power_length_checked() {
        let n = net();
        let mut sim = TransientSim::new(&n, 1e-4, Integrator::BackwardEuler).unwrap();
        assert!(sim.step(&[1.0; 4]).is_err());
    }

    #[test]
    fn mean_below_peak_for_nonuniform_power() {
        let n = net();
        let mut p = vec![0.5; 16];
        p[5] = 5.0;
        let mut sim = TransientSim::new(&n, 1e-4, Integrator::BackwardEuler).unwrap();
        sim.init_from_steady(&p).unwrap();
        assert!(sim.mean_block_temp() < sim.peak_block_temp());
    }
}
