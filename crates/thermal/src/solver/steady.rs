//! Iterative steady-state solution (Gauss–Seidel).
//!
//! The direct LU path in [`crate::RcNetwork::steady_state`] is exact and
//! fast for block-level networks; this module provides an independent
//! iterative solver used to cross-validate it (and which scales better for
//! heavily refined grid models, where the matrix is large but strongly
//! diagonally dominant).

use crate::error::ThermalError;
use crate::rc_model::RcNetwork;

/// Solves the steady-state system `G T = P + G_amb T_amb` by Gauss–Seidel
/// iteration, returning all node temperatures (blocks first).
///
/// # Errors
///
/// * [`ThermalError::PowerLengthMismatch`] on a wrong-sized power vector.
/// * [`ThermalError::SingularSystem`] if the iteration fails to converge
///   within `max_iters` (the RC matrices built by this crate are strictly
///   diagonally dominant, so this indicates corruption, not physics).
pub fn steady_state_gauss_seidel(
    net: &RcNetwork,
    power_blocks: &[f64],
    tol: f64,
    max_iters: usize,
) -> Result<Vec<f64>, ThermalError> {
    let b = net.rhs(power_blocks)?;
    let a = net.conductance();
    let n = net.n_nodes();
    let mut t = vec![net.ambient(); n];
    for _ in 0..max_iters {
        let mut max_delta: f64 = 0.0;
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..n {
                if j != i {
                    acc -= a[(i, j)] * t[j];
                }
            }
            let new = acc / a[(i, i)];
            max_delta = max_delta.max((new - t[i]).abs());
            t[i] = new;
        }
        if max_delta < tol {
            return Ok(t);
        }
    }
    Err(ThermalError::SingularSystem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::package::PackageConfig;

    fn net() -> RcNetwork {
        let plan = Floorplan::mesh_grid(4, 4, 4.36e-6).unwrap();
        RcNetwork::build(&plan, &PackageConfig::date05_defaults()).unwrap()
    }

    #[test]
    fn matches_direct_lu_solution() {
        let net = net();
        let mut power = vec![1.0; 16];
        power[5] = 3.5;
        power[10] = 2.0;
        let direct = net.steady_state_full(&power).unwrap();
        let iterative = steady_state_gauss_seidel(&net, &power, 1e-10, 100_000).unwrap();
        for (a, b) in direct.iter().zip(&iterative) {
            assert!((a - b).abs() < 1e-6, "LU {a} vs GS {b}");
        }
    }

    #[test]
    fn zero_power_converges_to_ambient() {
        let net = net();
        let t = steady_state_gauss_seidel(&net, &[0.0; 16], 1e-12, 100_000).unwrap();
        for v in t {
            assert!((v - 40.0).abs() < 1e-6);
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let net = net();
        assert!(matches!(
            steady_state_gauss_seidel(&net, &[1.0], 1e-9, 10),
            Err(ThermalError::PowerLengthMismatch { .. })
        ));
    }

    #[test]
    fn iteration_budget_enforced() {
        let net = net();
        // One sweep cannot converge to 1e-12 from ambient under load.
        let r = steady_state_gauss_seidel(&net, &[2.0; 16], 1e-12, 1);
        assert!(matches!(r, Err(ThermalError::SingularSystem)));
    }
}
