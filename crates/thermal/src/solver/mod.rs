//! Steady-state and transient solvers for [`crate::RcNetwork`].

pub mod steady;
pub mod transient;
