//! Sparse linear algebra for the RC thermal network: CSR matrices and a
//! Jacobi-preconditioned conjugate-gradient solver.
//!
//! The conductance matrix of an n-block network has ~7 nonzeros per row
//! (lateral neighbours + the vertical stack), so transient stepping through
//! a dense O(n²) solve wastes two orders of magnitude on large floorplans.
//! [`CsrMat::matvec_into`] is O(nnz), and [`CgSolver`] exploits the matrix
//! being symmetric positive definite (a grounded RC Laplacian, plus the
//! strictly positive `C/dt` diagonal the implicit integrator adds) to solve
//! each step in a handful of warm-started iterations without ever
//! factoring the system.

use crate::error::ThermalError;
use crate::linalg::DMat;

/// A sparse matrix in compressed-sparse-row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMat {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMat {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The stored value at `(i, j)`, or zero if the entry is structurally
    /// absent.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        match self.col_idx[span.clone()].binary_search(&j) {
            Ok(k) => self.vals[span.start + k],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `y = self * x` into a caller-owned buffer
    /// (the allocation-free hot path of the transient integrators).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` have the wrong length.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "dimension mismatch");
        assert_eq!(y.len(), self.n_rows, "dimension mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let span = self.row_ptr[i]..self.row_ptr[i + 1];
            let mut acc = 0.0;
            for (&j, &v) in self.col_idx[span.clone()].iter().zip(&self.vals[span]) {
                acc += v * x[j];
            }
            *yi = acc;
        }
    }

    /// Allocating matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// The matrix diagonal (zero where the entry is structurally absent).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n_rows.min(self.n_cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// A copy with `d[i]` added to each diagonal entry — how the implicit
    /// integrator forms `C/dt + G` without touching the off-diagonals.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square, `d` has the wrong length, or a
    /// diagonal entry is structurally absent (cannot happen for a
    /// conductance Laplacian, where every node has self-conductance).
    pub fn with_diagonal_added(&self, d: &[f64]) -> CsrMat {
        assert_eq!(self.n_rows, self.n_cols, "diagonal add requires square");
        assert_eq!(d.len(), self.n_rows, "dimension mismatch");
        let mut out = self.clone();
        for (i, &di) in d.iter().enumerate() {
            let span = out.row_ptr[i]..out.row_ptr[i + 1];
            let k = out.col_idx[span.clone()]
                .binary_search(&i)
                .expect("structural diagonal present");
            out.vals[span.start + k] += di;
        }
        out
    }

    /// Densifies the matrix (steady-state LU factorization, tests).
    pub fn to_dense(&self) -> DMat {
        let mut m = DMat::zeros(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.vals[k];
            }
        }
        m
    }
}

/// Accumulates `(row, col, value)` triplets and assembles a [`CsrMat`].
/// Duplicate coordinates sum, so conductances can be stamped the same way
/// the dense builder did.
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    n_rows: usize,
    n_cols: usize,
    triplets: Vec<(u32, u32, f64)>,
}

impl TripletBuilder {
    /// Creates an empty builder for an `n_rows x n_cols` matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        TripletBuilder {
            n_rows,
            n_cols,
            triplets: Vec::new(),
        }
    }

    /// Adds `v` at `(i, j)` (summing with anything already stamped there).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n_rows && j < self.n_cols, "triplet out of range");
        self.triplets.push((i as u32, j as u32, v));
    }

    /// Stamps a two-terminal conductance between nodes `i` and `j`: the
    /// standard RC-network Laplacian pattern (+g on both diagonals, -g on
    /// both off-diagonals).
    pub fn add_conductance(&mut self, i: usize, j: usize, g: f64) {
        self.add(i, j, -g);
        self.add(j, i, -g);
        self.add(i, i, g);
        self.add(j, j, g);
    }

    /// Assembles the CSR matrix, summing duplicate triplets.
    pub fn build(mut self) -> CsrMat {
        self.triplets.sort_unstable_by_key(|&(i, j, _)| (i, j));
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.triplets.len());
        let mut vals: Vec<f64> = Vec::with_capacity(self.triplets.len());
        row_ptr.push(0);
        let mut cur_row = 0usize;
        let mut last: Option<(u32, u32)> = None;
        for &(i, j, v) in &self.triplets {
            if last == Some((i, j)) {
                *vals.last_mut().expect("duplicate follows an entry") += v;
                continue;
            }
            while cur_row < i as usize {
                row_ptr.push(col_idx.len());
                cur_row += 1;
            }
            col_idx.push(j as usize);
            vals.push(v);
            last = Some((i, j));
        }
        while cur_row < self.n_rows {
            row_ptr.push(col_idx.len());
            cur_row += 1;
        }
        CsrMat {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr,
            col_idx,
            vals,
        }
    }
}

/// Jacobi-preconditioned conjugate gradient over a [`CsrMat`], with scratch
/// buffers owned by the solver so repeated solves (one per transient step)
/// allocate nothing.
#[derive(Debug, Clone)]
pub struct CgSolver {
    inv_diag: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    q: Vec<f64>,
    max_iters: usize,
    rel_tol: f64,
}

impl CgSolver {
    /// Prepares a solver for systems shaped like `a` (square, SPD, with a
    /// strictly positive diagonal).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] if any diagonal entry is
    /// non-positive (the matrix cannot be SPD).
    pub fn new(a: &CsrMat) -> Result<Self, ThermalError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(ThermalError::SingularSystem);
        }
        let diag = a.diagonal();
        if diag.iter().any(|&d| d <= 0.0 || !d.is_finite()) {
            return Err(ThermalError::SingularSystem);
        }
        Ok(CgSolver {
            inv_diag: diag.iter().map(|d| 1.0 / d).collect(),
            r: vec![0.0; n],
            z: vec![0.0; n],
            p: vec![0.0; n],
            q: vec![0.0; n],
            max_iters: 10 * n + 100,
            rel_tol: 1e-12,
        })
    }

    /// Solves `a x = b`, refining the initial guess already in `x` (warm
    /// start). Returns the number of iterations used.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NotConverged`] if the residual has not
    /// dropped below the relative tolerance within the iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if `b` or `x` do not match the solver dimension.
    pub fn solve(&mut self, a: &CsrMat, b: &[f64], x: &mut [f64]) -> Result<usize, ThermalError> {
        let n = self.r.len();
        assert_eq!(b.len(), n, "dimension mismatch");
        assert_eq!(x.len(), n, "dimension mismatch");

        let b_norm2: f64 = b.iter().map(|v| v * v).sum();
        if b_norm2 == 0.0 {
            x.fill(0.0);
            return Ok(0);
        }
        let tol2 = self.rel_tol * self.rel_tol * b_norm2;

        // r = b - A x
        a.matvec_into(x, &mut self.r);
        for (ri, bi) in self.r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let mut r_norm2: f64 = self.r.iter().map(|v| v * v).sum();
        if r_norm2 <= tol2 {
            return Ok(0);
        }

        // z = M^-1 r ; p = z
        for ((zi, ri), inv) in self.z.iter_mut().zip(&self.r).zip(&self.inv_diag) {
            *zi = ri * inv;
        }
        self.p.copy_from_slice(&self.z);
        let mut rz: f64 = self.r.iter().zip(&self.z).map(|(r, z)| r * z).sum();

        for iter in 1..=self.max_iters {
            a.matvec_into(&self.p, &mut self.q);
            let pq: f64 = self.p.iter().zip(&self.q).map(|(p, q)| p * q).sum();
            if pq <= 0.0 || !pq.is_finite() {
                // Not positive definite along p (numerical breakdown).
                return Err(ThermalError::NotConverged { iters: iter });
            }
            let alpha = rz / pq;
            for (xi, pi) in x.iter_mut().zip(&self.p) {
                *xi += alpha * pi;
            }
            for (ri, qi) in self.r.iter_mut().zip(&self.q) {
                *ri -= alpha * qi;
            }
            r_norm2 = self.r.iter().map(|v| v * v).sum();
            if r_norm2 <= tol2 {
                return Ok(iter);
            }
            for ((zi, ri), inv) in self.z.iter_mut().zip(&self.r).zip(&self.inv_diag) {
                *zi = ri * inv;
            }
            let rz_next: f64 = self.r.iter().zip(&self.z).map(|(r, z)| r * z).sum();
            let beta = rz_next / rz;
            rz = rz_next;
            for (pi, zi) in self.p.iter_mut().zip(&self.z) {
                *pi = zi + beta * *pi;
            }
        }
        Err(ThermalError::NotConverged {
            iters: self.max_iters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_path(n: usize) -> CsrMat {
        // Path graph Laplacian + 1.0 ground at node 0: SPD, tridiagonal.
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n - 1 {
            b.add_conductance(i, i + 1, 1.0 + i as f64 * 0.1);
        }
        b.add(0, 0, 1.0);
        b.build()
    }

    #[test]
    fn builder_sums_duplicates_and_orders_columns() {
        let mut b = TripletBuilder::new(3, 3);
        b.add(1, 2, 4.0);
        b.add(1, 0, 1.0);
        b.add(1, 2, -1.5);
        b.add(0, 0, 2.0);
        let m = b.build();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(1, 2), 2.5);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(2, 2), 0.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut b = TripletBuilder::new(4, 4);
        b.add(0, 0, 1.0);
        b.add(3, 3, 2.0);
        let m = b.build();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0, 1.0]), vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = laplacian_path(8);
        let d = m.to_dense();
        let x: Vec<f64> = (0..8).map(|i| (i as f64).sin() + 2.0).collect();
        let ys = m.matvec(&x);
        let yd = d.matvec(&x);
        for (a, b) in ys.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-14, "{a} != {b}");
        }
    }

    #[test]
    fn conductance_stamp_is_symmetric_laplacian() {
        let mut b = TripletBuilder::new(3, 3);
        b.add_conductance(0, 1, 2.0);
        b.add_conductance(1, 2, 3.0);
        let m = b.build();
        // Row sums vanish (Laplacian), matrix symmetric.
        for i in 0..3 {
            let sum: f64 = (0..3).map(|j| m.get(i, j)).sum();
            assert!(sum.abs() < 1e-14);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn with_diagonal_added_only_touches_diagonal() {
        let m = laplacian_path(5);
        let d = vec![10.0; 5];
        let md = m.with_diagonal_added(&d);
        for i in 0..5 {
            for j in 0..5 {
                let expect = m.get(i, j) + if i == j { 10.0 } else { 0.0 };
                assert!((md.get(i, j) - expect).abs() < 1e-14);
            }
        }
        assert_eq!(md.nnz(), m.nnz());
    }

    #[test]
    fn cg_solves_spd_system_cold_and_warm() {
        let m = laplacian_path(20);
        let x_true: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).cos() * 5.0).collect();
        let b = m.matvec(&x_true);
        let mut solver = CgSolver::new(&m).unwrap();

        let mut x = vec![0.0; 20];
        let iters_cold = solver.solve(&m, &b, &mut x).unwrap();
        for (a, e) in x.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-7, "{a} != {e}");
        }

        // Warm start from the solution: must converge (almost) instantly.
        let iters_warm = solver.solve(&m, &b, &mut x).unwrap();
        assert!(iters_warm <= 1, "warm start took {iters_warm} iters");
        assert!(iters_cold >= iters_warm);
    }

    #[test]
    fn cg_zero_rhs_gives_zero() {
        let m = laplacian_path(6);
        let mut solver = CgSolver::new(&m).unwrap();
        let mut x = vec![3.0; 6];
        let iters = solver.solve(&m, &[0.0; 6], &mut x).unwrap();
        assert_eq!(iters, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cg_rejects_non_positive_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(1, 1, -1.0);
        assert_eq!(
            CgSolver::new(&b.build()).unwrap_err(),
            ThermalError::SingularSystem
        );
        // Missing diagonal is equally rejected.
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 0.5);
        assert!(CgSolver::new(&b.build()).is_err());
    }

    #[test]
    fn cg_matches_dense_lu() {
        let m = laplacian_path(30);
        let b: Vec<f64> = (0..30).map(|i| (i % 7) as f64 - 3.0).collect();
        let lu = m.to_dense().lu().unwrap();
        let expect = lu.solve(&b);
        let mut x = vec![0.0; 30];
        CgSolver::new(&m).unwrap().solve(&m, &b, &mut x).unwrap();
        for (a, e) in x.iter().zip(&expect) {
            assert!((a - e).abs() < 1e-7, "{a} != {e}");
        }
    }
}
