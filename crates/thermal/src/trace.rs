//! Thermal trace recording and summary statistics.

use serde::{Deserialize, Serialize};

/// Summary of a recorded thermal trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalStats {
    /// Highest block temperature seen anywhere in the trace (°C).
    pub peak: f64,
    /// Index of the block where the peak occurred.
    pub peak_block: usize,
    /// Time (seconds) at which the peak occurred.
    pub peak_time: f64,
    /// Time-averaged mean block temperature (°C).
    pub mean: f64,
    /// Time-averaged per-frame maximum (°C) — the "typical" peak.
    pub mean_peak: f64,
}

/// A recorded sequence of per-block temperature frames at a fixed period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalTrace {
    dt: f64,
    n_blocks: usize,
    frames: Vec<Vec<f64>>,
}

impl ThermalTrace {
    /// Creates an empty trace with frame period `dt` seconds for `n_blocks`
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `n_blocks == 0`.
    pub fn new(dt: f64, n_blocks: usize) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        assert!(n_blocks > 0, "need at least one block");
        ThermalTrace {
            dt,
            n_blocks,
            frames: Vec::new(),
        }
    }

    /// Appends a frame of block temperatures.
    ///
    /// # Panics
    ///
    /// Panics if the frame length differs from `n_blocks`.
    pub fn push(&mut self, block_temps: &[f64]) {
        assert_eq!(block_temps.len(), self.n_blocks, "frame length mismatch");
        self.frames.push(block_temps.to_vec());
    }

    /// Number of frames recorded.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if no frames were recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame period in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The recorded frames.
    pub fn frames(&self) -> &[Vec<f64>] {
        &self.frames
    }

    /// Total simulated duration covered by the trace.
    pub fn duration(&self) -> f64 {
        self.dt * self.frames.len() as f64
    }

    /// Computes summary statistics over frames `skip..`, allowing a warm-up
    /// prefix to be excluded. Returns `None` if no frames remain.
    pub fn stats_after(&self, skip: usize) -> Option<ThermalStats> {
        let frames = self.frames.get(skip..)?;
        if frames.is_empty() {
            return None;
        }
        let mut peak = f64::NEG_INFINITY;
        let mut peak_block = 0;
        let mut peak_frame = 0;
        let mut mean_acc = 0.0;
        let mut mean_peak_acc = 0.0;
        for (fi, frame) in frames.iter().enumerate() {
            let mut frame_max = f64::NEG_INFINITY;
            for (bi, &t) in frame.iter().enumerate() {
                if t > peak {
                    peak = t;
                    peak_block = bi;
                    peak_frame = fi;
                }
                frame_max = frame_max.max(t);
                mean_acc += t;
            }
            mean_peak_acc += frame_max;
        }
        let n_samples = (frames.len() * self.n_blocks) as f64;
        Some(ThermalStats {
            peak,
            peak_block,
            peak_time: (skip + peak_frame) as f64 * self.dt,
            mean: mean_acc / n_samples,
            mean_peak: mean_peak_acc / frames.len() as f64,
        })
    }

    /// Summary statistics over the whole trace. `None` when empty.
    pub fn stats(&self) -> Option<ThermalStats> {
        self.stats_after(0)
    }

    /// Renders the trace as CSV (`time,block0,block1,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s");
        for b in 0..self.n_blocks {
            out.push_str(&format!(",block{b}"));
        }
        out.push('\n');
        for (i, frame) in self.frames.iter().enumerate() {
            out.push_str(&format!("{:.9}", i as f64 * self.dt));
            for t in frame {
                out.push_str(&format!(",{t:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_track_peak() {
        let mut tr = ThermalTrace::new(1e-3, 2);
        tr.push(&[40.0, 41.0]);
        tr.push(&[45.0, 80.0]);
        tr.push(&[42.0, 43.0]);
        let s = tr.stats().unwrap();
        assert_eq!(s.peak, 80.0);
        assert_eq!(s.peak_block, 1);
        assert!((s.peak_time - 1e-3).abs() < 1e-12);
        assert!((s.mean - (40.0 + 41.0 + 45.0 + 80.0 + 42.0 + 43.0) / 6.0).abs() < 1e-12);
        assert!((s.mean_peak - (41.0 + 80.0 + 43.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_skip() {
        let mut tr = ThermalTrace::new(0.5, 1);
        tr.push(&[100.0]);
        tr.push(&[50.0]);
        let s = tr.stats_after(1).unwrap();
        assert_eq!(s.peak, 50.0);
        assert!(tr.stats_after(2).is_none());
        assert!(tr.stats_after(99).is_none());
    }

    #[test]
    fn empty_trace_has_no_stats() {
        let tr = ThermalTrace::new(1.0, 3);
        assert!(tr.stats().is_none());
        assert!(tr.is_empty());
        assert_eq!(tr.duration(), 0.0);
    }

    #[test]
    fn csv_shape() {
        let mut tr = ThermalTrace::new(1e-3, 2);
        tr.push(&[40.0, 41.0]);
        let csv = tr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("time_s,block0,block1"));
        assert!(lines[1].contains(",40.0000,41.0000"));
    }

    #[test]
    #[should_panic(expected = "frame length mismatch")]
    fn wrong_frame_length_panics() {
        let mut tr = ThermalTrace::new(1.0, 2);
        tr.push(&[1.0]);
    }
}
