//! Thermal trace recording and summary statistics, plus the threshold
//! watcher that turns temperature frames into deterministic
//! [`TraceEvent::TempCrossing`] events.

use hotnoc_obs::{TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};

/// Summary of a recorded thermal trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalStats {
    /// Highest block temperature seen anywhere in the trace (°C).
    pub peak: f64,
    /// Index of the block where the peak occurred.
    pub peak_block: usize,
    /// Time (seconds) at which the peak occurred.
    pub peak_time: f64,
    /// Time-averaged mean block temperature (°C).
    pub mean: f64,
    /// Time-averaged per-frame maximum (°C) — the "typical" peak.
    pub mean_peak: f64,
}

/// A recorded sequence of per-block temperature frames at a fixed period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalTrace {
    dt: f64,
    n_blocks: usize,
    frames: Vec<Vec<f64>>,
}

impl ThermalTrace {
    /// Creates an empty trace with frame period `dt` seconds for `n_blocks`
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `n_blocks == 0`.
    pub fn new(dt: f64, n_blocks: usize) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        assert!(n_blocks > 0, "need at least one block");
        ThermalTrace {
            dt,
            n_blocks,
            frames: Vec::new(),
        }
    }

    /// Appends a frame of block temperatures.
    ///
    /// # Panics
    ///
    /// Panics if the frame length differs from `n_blocks`.
    pub fn push(&mut self, block_temps: &[f64]) {
        assert_eq!(block_temps.len(), self.n_blocks, "frame length mismatch");
        self.frames.push(block_temps.to_vec());
    }

    /// Number of frames recorded.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if no frames were recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame period in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The recorded frames.
    pub fn frames(&self) -> &[Vec<f64>] {
        &self.frames
    }

    /// Total simulated duration covered by the trace.
    pub fn duration(&self) -> f64 {
        self.dt * self.frames.len() as f64
    }

    /// Computes summary statistics over frames `skip..`, allowing a warm-up
    /// prefix to be excluded. Returns `None` if no frames remain.
    pub fn stats_after(&self, skip: usize) -> Option<ThermalStats> {
        let frames = self.frames.get(skip..)?;
        if frames.is_empty() {
            return None;
        }
        let mut peak = f64::NEG_INFINITY;
        let mut peak_block = 0;
        let mut peak_frame = 0;
        let mut mean_acc = 0.0;
        let mut mean_peak_acc = 0.0;
        for (fi, frame) in frames.iter().enumerate() {
            let mut frame_max = f64::NEG_INFINITY;
            for (bi, &t) in frame.iter().enumerate() {
                if t > peak {
                    peak = t;
                    peak_block = bi;
                    peak_frame = fi;
                }
                frame_max = frame_max.max(t);
                mean_acc += t;
            }
            mean_peak_acc += frame_max;
        }
        let n_samples = (frames.len() * self.n_blocks) as f64;
        Some(ThermalStats {
            peak,
            peak_block,
            peak_time: (skip + peak_frame) as f64 * self.dt,
            mean: mean_acc / n_samples,
            mean_peak: mean_peak_acc / frames.len() as f64,
        })
    }

    /// Summary statistics over the whole trace. `None` when empty.
    pub fn stats(&self) -> Option<ThermalStats> {
        self.stats_after(0)
    }

    /// Renders the trace as CSV (`time,block0,block1,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s");
        for b in 0..self.n_blocks {
            out.push_str(&format!(",block{b}"));
        }
        out.push('\n');
        for (i, frame) in self.frames.iter().enumerate() {
            out.push_str(&format!("{:.9}", i as f64 * self.dt));
            for t in frame {
                out.push_str(&format!(",{t:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Emits a [`TraceEvent::TempCrossing`] whenever a block crosses the
/// configured temperature threshold, with hysteresis: after a rising
/// crossing the block must cool below `threshold - hysteresis` before a
/// falling crossing (and the next rising one) can fire, so a block
/// hovering at the threshold does not spam the trace. Purely a function
/// of the observed frames — deterministic whenever they are.
#[derive(Debug, Clone)]
pub struct ThresholdWatcher {
    threshold: f64,
    hysteresis: f64,
    above: Vec<bool>,
}

impl ThresholdWatcher {
    /// Watches `n_blocks` blocks against `threshold` °C with the given
    /// hysteresis band (°C, non-negative).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not finite or `hysteresis` is negative.
    pub fn new(threshold: f64, hysteresis: f64, n_blocks: usize) -> Self {
        assert!(threshold.is_finite(), "threshold must be finite");
        assert!(
            hysteresis >= 0.0 && hysteresis.is_finite(),
            "hysteresis must be non-negative"
        );
        ThresholdWatcher {
            threshold,
            hysteresis,
            above: vec![false; n_blocks],
        }
    }

    /// The threshold being watched, °C.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Observes one frame of block temperatures at sim cycle `cycle`,
    /// recording a crossing event per block that changed side.
    ///
    /// # Panics
    ///
    /// Panics if the frame length differs from the watched block count.
    pub fn observe(&mut self, cycle: u64, block_temps: &[f64], sink: &mut dyn TraceSink) {
        assert_eq!(block_temps.len(), self.above.len(), "frame length mismatch");
        for (node, (&temp, above)) in block_temps.iter().zip(&mut self.above).enumerate() {
            let crossed = if *above {
                (temp < self.threshold - self.hysteresis).then_some(false)
            } else {
                (temp > self.threshold).then_some(true)
            };
            if let Some(rising) = crossed {
                *above = rising;
                sink.record(TraceEvent::TempCrossing {
                    cycle,
                    node: node as u64,
                    temp_c: temp,
                    threshold_c: self.threshold,
                    rising,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotnoc_obs::VecSink;

    #[test]
    fn watcher_fires_on_crossings_with_hysteresis() {
        let mut w = ThresholdWatcher::new(70.0, 0.5, 2);
        let mut sink = VecSink::new();
        w.observe(10, &[69.0, 71.0], &mut sink); // block 1 rises
        w.observe(20, &[69.8, 69.8], &mut sink); // block 1 inside the band: quiet
        w.observe(30, &[69.0, 69.0], &mut sink); // block 1 falls below band
        w.observe(40, &[70.1, 69.0], &mut sink); // block 0 rises
        let events = sink.drain();
        let kinds: Vec<(u64, u64, bool)> = events
            .iter()
            .map(|e| match *e {
                TraceEvent::TempCrossing {
                    cycle,
                    node,
                    rising,
                    ..
                } => (cycle, node, rising),
                ref other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(kinds, vec![(10, 1, true), (30, 1, false), (40, 0, true)]);
    }

    #[test]
    fn stats_track_peak() {
        let mut tr = ThermalTrace::new(1e-3, 2);
        tr.push(&[40.0, 41.0]);
        tr.push(&[45.0, 80.0]);
        tr.push(&[42.0, 43.0]);
        let s = tr.stats().unwrap();
        assert_eq!(s.peak, 80.0);
        assert_eq!(s.peak_block, 1);
        assert!((s.peak_time - 1e-3).abs() < 1e-12);
        assert!((s.mean - (40.0 + 41.0 + 45.0 + 80.0 + 42.0 + 43.0) / 6.0).abs() < 1e-12);
        assert!((s.mean_peak - (41.0 + 80.0 + 43.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_skip() {
        let mut tr = ThermalTrace::new(0.5, 1);
        tr.push(&[100.0]);
        tr.push(&[50.0]);
        let s = tr.stats_after(1).unwrap();
        assert_eq!(s.peak, 50.0);
        assert!(tr.stats_after(2).is_none());
        assert!(tr.stats_after(99).is_none());
    }

    #[test]
    fn empty_trace_has_no_stats() {
        let tr = ThermalTrace::new(1.0, 3);
        assert!(tr.stats().is_none());
        assert!(tr.is_empty());
        assert_eq!(tr.duration(), 0.0);
    }

    #[test]
    fn csv_shape() {
        let mut tr = ThermalTrace::new(1e-3, 2);
        tr.push(&[40.0, 41.0]);
        let csv = tr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("time_s,block0,block1"));
        assert!(lines[1].contains(",40.0000,41.0000"));
    }

    #[test]
    #[should_panic(expected = "frame length mismatch")]
    fn wrong_frame_length_panics() {
        let mut tr = ThermalTrace::new(1.0, 2);
        tr.push(&[1.0]);
    }
}
