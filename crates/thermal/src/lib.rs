//! # hotnoc-thermal — block-level RC thermal simulation
//!
//! A from-scratch substitute for the HotSpot thermal library used by the
//! DATE'05 paper. HotSpot's block mode models the die and its package as an
//! RC-equivalent circuit: each floorplan block is a thermal node; lateral
//! resistances couple adjacent blocks; vertical resistances lead through the
//! thermal interface material (TIM) into the heat spreader, heat sink and
//! finally, via a convection resistance, into ambient air. This crate builds
//! the same style of network ([`rc_model::RcNetwork`]) and provides both a
//! steady-state solver (dense LU) and transient solvers (backward Euler with
//! a pre-factored system matrix, plus classic RK4).
//!
//! The paper's setup — "HotSpot ... with all settings at the default values
//! and an ambient temp. of 40 °C" — corresponds to
//! [`package::PackageConfig::date05_defaults`].
//!
//! ## Example: steady-state of a 4x4 chip
//!
//! ```
//! use hotnoc_thermal::{Floorplan, PackageConfig, RcNetwork};
//!
//! // 16 blocks of 4.36 mm^2 each, as in the paper's test chips.
//! let plan = Floorplan::mesh_grid(4, 4, 4.36e-6)?;
//! let net = RcNetwork::build(&plan, &PackageConfig::date05_defaults())?;
//! let power = vec![1.5; 16]; // watts per block
//! let temps = net.steady_state(&power)?;
//! let peak = temps.iter().cloned().fold(f64::NAN, f64::max);
//! assert!(peak > 40.0, "chip must be hotter than ambient");
//! # Ok::<(), hotnoc_thermal::ThermalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod floorplan;
pub mod grid;
pub mod linalg;
pub mod materials;
pub mod package;
pub mod rc_model;
pub mod solver;
pub mod sparse;
pub mod trace;

pub use error::ThermalError;
pub use floorplan::{Block, Floorplan};
pub use grid::GridModel;
pub use package::PackageConfig;
pub use rc_model::RcNetwork;
pub use solver::transient::{Integrator, TransientSim};
pub use sparse::{CgSolver, CsrMat, TripletBuilder};
pub use trace::{ThermalStats, ThermalTrace, ThresholdWatcher};
