//! Error types for the thermal simulator.

use std::error::Error;
use std::fmt;

/// Errors returned by the thermal simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A floorplan block has a non-positive dimension.
    DegenerateBlock {
        /// Index of the offending block.
        index: usize,
    },
    /// Two floorplan blocks overlap.
    OverlappingBlocks {
        /// First block index.
        a: usize,
        /// Second block index.
        b: usize,
    },
    /// The floorplan has no blocks.
    EmptyFloorplan,
    /// A power vector's length does not match the number of blocks.
    PowerLengthMismatch {
        /// Blocks in the model.
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
    /// The system matrix is singular (disconnected or degenerate network).
    SingularSystem,
    /// A package parameter is non-physical (zero/negative/NaN).
    InvalidPackage {
        /// Which parameter failed validation.
        what: &'static str,
    },
    /// A solver step parameter is invalid (e.g. non-positive time step).
    InvalidStep {
        /// Description of the problem.
        what: &'static str,
    },
    /// The iterative solver failed to reach its tolerance (numerical
    /// breakdown or an iteration budget exhausted).
    NotConverged {
        /// Iterations performed before giving up.
        iters: usize,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::DegenerateBlock { index } => {
                write!(f, "floorplan block {index} has non-positive dimensions")
            }
            ThermalError::OverlappingBlocks { a, b } => {
                write!(f, "floorplan blocks {a} and {b} overlap")
            }
            ThermalError::EmptyFloorplan => write!(f, "floorplan contains no blocks"),
            ThermalError::PowerLengthMismatch { expected, got } => {
                write!(
                    f,
                    "power vector has {got} entries, model has {expected} blocks"
                )
            }
            ThermalError::SingularSystem => write!(f, "thermal network matrix is singular"),
            ThermalError::InvalidPackage { what } => {
                write!(f, "invalid package parameter: {what}")
            }
            ThermalError::InvalidStep { what } => write!(f, "invalid solver step: {what}"),
            ThermalError::NotConverged { iters } => {
                write!(
                    f,
                    "iterative solver did not converge after {iters} iterations"
                )
            }
        }
    }
}

impl Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            ThermalError::DegenerateBlock { index: 1 },
            ThermalError::OverlappingBlocks { a: 0, b: 1 },
            ThermalError::EmptyFloorplan,
            ThermalError::PowerLengthMismatch {
                expected: 16,
                got: 4,
            },
            ThermalError::SingularSystem,
            ThermalError::InvalidPackage { what: "t_die" },
            ThermalError::InvalidStep { what: "dt" },
            ThermalError::NotConverged { iters: 100 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThermalError>();
    }
}
