//! The daemon: listener, per-connection protocol loop, the shared
//! `minipool`, the fingerprint result cache and its persistence journal.
//!
//! One thread per connection; each submission runs on the shared pool
//! ([`minipool::ThreadPool::scope`] is safe to enter concurrently from
//! many threads — each scope's tasks carry their own completion latch).
//! Computed scenario results are appended to the
//! `hotnoc-serve-journal-v1` journal (one flushed line per result) and
//! warm-loaded into the cache on the next start; campaign submissions
//! persist through their own `run_campaign_on` manifests under the spool
//! directory, so a restarted daemon resumes rather than recomputes them.

use crate::protocol::{
    decode_request, error_fields, response_line, Endpoint, Request, Stream, Submission,
    JOURNAL_SCHEMA,
};
use hotnoc_obs::TraceEvent;
use hotnoc_scenario::json::Json;
use hotnoc_scenario::run::run_scenario;
use hotnoc_scenario::runner::{run_campaign_on, CampaignRun, RunnerOptions};
use hotnoc_scenario::tracefile::TraceDoc;
use hotnoc_scenario::ScenarioOutcome;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Accept-loop poll interval (the drain flag is checked this often) and
/// per-connection read timeout.
const POLL: Duration = Duration::from_millis(50);

/// How the daemon runs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Worker threads for the shared pool (>= 1; clamped to
    /// [`minipool::MAX_WORKERS`]).
    pub threads: usize,
    /// Path of the `hotnoc-serve-journal-v1` result journal; `None`
    /// disables persistence (the cache is memory-only).
    pub journal: Option<PathBuf>,
    /// Where to write the `hotnoc-trace-v1` serving trace (cache-hit
    /// events) on shutdown; `None` skips it.
    pub trace: Option<PathBuf>,
    /// Directory for campaign working state (one `run_campaign_on`
    /// manifest + artifact subdirectory per campaign fingerprint).
    pub spool: PathBuf,
}

/// What a drained daemon reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Submit requests received (hits + computes + failures + rejections).
    pub requests: u64,
    /// Submissions computed by running jobs.
    pub computed: u64,
    /// Submissions answered from the result cache.
    pub cache_hits: u64,
}

/// A serving failure: listener, journal or trace-file trouble. Protocol
/// errors never land here — they become per-request status responses.
#[derive(Debug)]
pub struct ServeError {
    /// What went wrong, with its path/endpoint context.
    pub message: String,
}

impl ServeError {
    fn new(message: String) -> ServeError {
        ServeError { message }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServeError {}

/// One cached response: the payload objects (id-less) rendered with each
/// requester's id, so a repeat submission under the same id reproduces
/// the original bytes exactly.
struct CacheEntry {
    /// Spec name, for the cache-hit trace event.
    name: String,
    /// Response payload field lists, one per line, in stream order.
    lines: Vec<Vec<(String, Json)>>,
}

type Cache = HashMap<(String, u64), Arc<CacheEntry>>;

struct State {
    pool: minipool::ThreadPool,
    threads: usize,
    spool: PathBuf,
    cache: Mutex<Cache>,
    journal: Option<Mutex<File>>,
    events: Mutex<Vec<TraceEvent>>,
    hits: AtomicU64,
    computed: AtomicU64,
    requests: AtomicU64,
    draining: AtomicBool,
}

/// Runs the daemon until a shutdown request drains it.
///
/// Binds the endpoint, warm-loads the journal into the result cache, then
/// accepts connections until a `{"op": "shutdown"}` arrives. Draining
/// lets in-flight jobs finish (and journal), rejects queued submissions
/// with a retryable status-1 error, writes the serving trace, and removes
/// a unix socket file on the way out.
///
/// # Errors
///
/// Returns a [`ServeError`] for listener, journal or trace-file trouble.
pub fn serve(opts: &ServeOptions) -> Result<ServeSummary, ServeError> {
    let listener = Listener::bind(&opts.endpoint)?;
    let mut cache = Cache::new();
    let journal = match &opts.journal {
        Some(path) => Some(Mutex::new(open_journal(path, &mut cache)?)),
        None => None,
    };
    let warm = cache.len();
    let pool = minipool::ThreadPool::new();
    let threads = opts.threads.clamp(1, minipool::MAX_WORKERS);
    // The connection thread entering a scope helps drain it, so n-way
    // parallelism needs n - 1 workers (same sizing as the batch runner).
    pool.ensure_workers(threads.saturating_sub(1));
    let state = Arc::new(State {
        pool,
        threads,
        spool: opts.spool.clone(),
        cache: Mutex::new(cache),
        journal,
        events: Mutex::new(Vec::new()),
        hits: AtomicU64::new(0),
        computed: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        draining: AtomicBool::new(false),
    });
    eprintln!(
        "serve: listening on {} ({} threads, {} journaled results warm)",
        opts.endpoint, threads, warm
    );

    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !state.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let st = Arc::clone(&state);
                conns.push(std::thread::spawn(move || handle_connection(stream, &st)));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) => return Err(ServeError::new(format!("accept on {}: {e}", opts.endpoint))),
        }
        conns.retain(|h| !h.is_finished());
    }
    // Drain: stop accepting (dropping the listener also removes a unix
    // socket file), then wait for every connection — in-flight jobs finish
    // and journal; their connections reject whatever else was queued.
    drop(listener);
    for h in conns {
        let _ = h.join();
    }
    if let Some(path) = &opts.trace {
        let events = std::mem::take(&mut *lock(&state.events));
        std::fs::write(path, TraceDoc::new("serve", events).to_jsonl())
            .map_err(|e| ServeError::new(format!("trace {}: {e}", path.display())))?;
    }
    let summary = ServeSummary {
        requests: state.requests.load(Ordering::SeqCst),
        computed: state.computed.load(Ordering::SeqCst),
        cache_hits: state.hits.load(Ordering::SeqCst),
    };
    eprintln!(
        "serve: drained after {} submissions ({} computed, {} cache hits)",
        summary.requests, summary.computed, summary.cache_hits
    );
    Ok(summary)
}

/// A poisoned daemon lock only means some connection thread panicked
/// mid-update of a statistic or the cache; the data is still coherent
/// (every write is a single insert/push), so serving continues.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> Result<Listener, ServeError> {
        match endpoint {
            Endpoint::Unix(path) => {
                // A socket file left by a killed daemon would fail the bind
                // with AddrInUse; a stale file only ever refuses
                // connections, so removing it is safe.
                if let Err(e) = std::fs::remove_file(path) {
                    if e.kind() != ErrorKind::NotFound {
                        return Err(ServeError::new(format!(
                            "socket {}: removing stale file: {e}",
                            path.display()
                        )));
                    }
                }
                let l = UnixListener::bind(path)
                    .map_err(|e| ServeError::new(format!("bind unix:{}: {e}", path.display())))?;
                l.set_nonblocking(true)
                    .map_err(|e| ServeError::new(format!("socket {}: {e}", path.display())))?;
                Ok(Listener::Unix(l, path.clone()))
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())
                    .map_err(|e| ServeError::new(format!("bind tcp:{addr}: {e}")))?;
                l.set_nonblocking(true)
                    .map_err(|e| ServeError::new(format!("socket tcp:{addr}: {e}")))?;
                Ok(Listener::Tcp(l))
            }
        }
    }

    /// Accepts one connection: blocking reads with a [`POLL`] timeout so
    /// the handler can notice a drain while idle.
    fn accept(&self) -> std::io::Result<Box<dyn Stream>> {
        match self {
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(POLL))?;
                Ok(Box::new(s))
            }
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(POLL))?;
                Ok(Box::new(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

enum Flow {
    Continue,
    Close,
}

fn handle_connection(mut stream: Box<dyn Stream>, state: &State) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            match handle_line(&line, stream.as_mut(), state) {
                Ok(Flow::Continue) => {}
                Ok(Flow::Close) | Err(_) => return,
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client hung up
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle poll point: a draining daemon closes quiet
                // connections instead of waiting for the client.
                if state.draining.load(Ordering::SeqCst) && buf.is_empty() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_line(line: &str, out: &mut dyn Write, state: &State) -> std::io::Result<Flow> {
    let j = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => {
            // Unparsable bytes mean the line framing itself is suspect:
            // answer (anonymously — no id can be trusted out of a broken
            // line) and drop the connection. The daemon stays up.
            let fields = error_fields(2, &format!("malformed request line: {e}"), false);
            writeln!(out, "{}", response_line(None, &fields))?;
            return out.flush().map(|()| Flow::Close);
        }
    };
    // Echo the id even on shape errors, so clients can correlate them.
    let id = j.get("id").and_then(Json::as_str).map(str::to_string);
    let request = match decode_request(&j) {
        Ok(r) => r,
        Err(e) => {
            let fields = error_fields(2, &e, false);
            writeln!(out, "{}", response_line(id.as_deref(), &fields))?;
            return out.flush().map(|()| Flow::Continue);
        }
    };
    match request {
        Request::Ping => {
            let fields = vec![
                ("status".to_string(), Json::int(0)),
                ("pong".to_string(), Json::Bool(true)),
            ];
            writeln!(out, "{}", response_line(id.as_deref(), &fields))?;
            out.flush().map(|()| Flow::Continue)
        }
        Request::Shutdown => {
            state.draining.store(true, Ordering::SeqCst);
            eprintln!("serve: shutdown requested, draining");
            let fields = vec![
                ("status".to_string(), Json::int(0)),
                ("draining".to_string(), Json::Bool(true)),
            ];
            writeln!(out, "{}", response_line(id.as_deref(), &fields))?;
            out.flush().map(|()| Flow::Continue)
        }
        Request::Submit { id, submission } => {
            state.requests.fetch_add(1, Ordering::SeqCst);
            if state.draining.load(Ordering::SeqCst) {
                // Queued behind a drain: clean, retryable rejection.
                let fields = error_fields(1, "draining", true);
                writeln!(out, "{}", response_line(Some(&id), &fields))?;
                return out.flush().map(|()| Flow::Continue);
            }
            handle_submit(&id, *submission, out, state).map(|()| Flow::Continue)
        }
    }
}

fn handle_submit(
    id: &str,
    submission: Submission,
    out: &mut dyn Write,
    state: &State,
) -> std::io::Result<()> {
    let key = submission.key();
    let cached = lock(&state.cache).get(&key).cloned();
    if let Some(entry) = cached {
        record_hit(state, &key.0, &entry.name);
        return write_entry(out, id, &entry);
    }
    let entry = match submission {
        Submission::Scenario(spec) => {
            let mut result = None;
            state.pool.scope(|s| {
                s.spawn(|| result = Some(run_scenario(&spec)));
            });
            match result.expect("scope completed the spawned task") {
                Ok(outcome) => {
                    let outcome = outcome.to_json();
                    journal_result(state, &key, &spec.name, &outcome);
                    scenario_entry(&spec.name, &key.0, outcome)
                }
                Err(e) => {
                    let fields = error_fields(1, &format!("scenario failed: {e}"), false);
                    writeln!(out, "{}", response_line(Some(id), &fields))?;
                    return out.flush();
                }
            }
        }
        Submission::Campaign(spec) => {
            // The campaign keeps its usual manifest journal in the spool,
            // keyed by fingerprint: a daemon killed mid-campaign resumes
            // instead of recomputing, and artifact bytes are unchanged.
            let opts = RunnerOptions {
                threads: state.threads,
                out_dir: state.spool.join(&key.0),
                max_jobs: None,
                fresh: false,
                progress: false,
                trace_dir: None,
            };
            match run_campaign_on(&spec, &opts, &state.pool) {
                Ok(run) => campaign_entry(&spec.name, &key.0, &run),
                Err(e) => {
                    let fields = error_fields(1, &format!("campaign failed: {e}"), false);
                    writeln!(out, "{}", response_line(Some(id), &fields))?;
                    return out.flush();
                }
            }
        }
    };
    state.computed.fetch_add(1, Ordering::SeqCst);
    let entry = Arc::new(entry);
    lock(&state.cache).insert(key, Arc::clone(&entry));
    write_entry(out, id, &entry)
}

/// Records a cache hit on the observability plane: a `CacheHit` trace
/// event keyed by hit ordinal (assigned under the event lock so the trace
/// stays in non-descending order) plus a stderr log line. The response
/// bytes themselves carry no marker — that is what keeps them
/// byte-identical to the computed response.
fn record_hit(state: &State, fingerprint: &str, name: &str) {
    let mut events = lock(&state.events);
    let ordinal = state.hits.fetch_add(1, Ordering::SeqCst) + 1;
    events.push(TraceEvent::CacheHit {
        cycle: ordinal,
        fingerprint: fingerprint.to_string(),
        name: name.to_string(),
    });
    drop(events);
    eprintln!("serve: cache hit {fingerprint} ({name})");
}

fn scenario_entry(name: &str, fingerprint: &str, outcome: Json) -> CacheEntry {
    CacheEntry {
        name: name.to_string(),
        lines: vec![vec![
            ("status".to_string(), Json::int(0)),
            ("fingerprint".to_string(), Json::str(fingerprint)),
            ("outcome".to_string(), outcome),
        ]],
    }
}

fn campaign_entry(name: &str, fingerprint: &str, run: &CampaignRun) -> CacheEntry {
    let mut lines = Vec::with_capacity(run.completed.len() + 1);
    for r in &run.completed {
        lines.push(vec![
            ("job".to_string(), Json::int(r.index as u64)),
            ("name".to_string(), Json::str(&r.spec.name)),
            ("seed".to_string(), Json::int(r.spec.seed)),
            ("status".to_string(), Json::int(0)),
            ("outcome".to_string(), r.outcome.to_json()),
        ]);
    }
    lines.push(vec![
        ("status".to_string(), Json::int(0)),
        ("fingerprint".to_string(), Json::str(fingerprint)),
        ("jobs".to_string(), Json::int(run.total_jobs as u64)),
    ]);
    CacheEntry {
        name: name.to_string(),
        lines,
    }
}

fn write_entry(out: &mut dyn Write, id: &str, entry: &CacheEntry) -> std::io::Result<()> {
    for fields in &entry.lines {
        writeln!(out, "{}", response_line(Some(id), fields))?;
    }
    out.flush()
}

/// Appends one computed scenario result to the journal: a single
/// `writeln!` + flush under the journal lock, so a kill between records
/// never leaves a torn line for the loader to skip. A write failure is
/// logged, not fatal — the in-memory cache stays correct either way.
fn journal_result(state: &State, key: &(String, u64), name: &str, outcome: &Json) {
    let Some(journal) = &state.journal else {
        return;
    };
    let line = Json::object(vec![
        ("fingerprint", Json::str(&key.0)),
        ("seed", Json::int(key.1)),
        ("scenario", Json::str(name)),
        ("outcome", outcome.clone()),
    ]);
    let mut f = lock(journal);
    if writeln!(f, "{line}").and_then(|()| f.flush()).is_err() {
        eprintln!("serve: warning: journal append failed for {}", key.0);
    }
}

/// Opens (creating if absent) the journal and warm-loads its results into
/// the cache. The tail is trusted only as far as it verifies: the first
/// incomplete, unparsable or non-canonical line and everything after it
/// are dropped and truncated away, so appends always extend a clean
/// journal.
fn open_journal(path: &Path, cache: &mut Cache) -> Result<File, ServeError> {
    let err = |e: std::io::Error| ServeError::new(format!("journal {}: {e}", path.display()));
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(err)?;
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == ErrorKind::NotFound => String::new(),
        Err(e) => return Err(err(e)),
    };
    if text.is_empty() {
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(err)?;
        let header = Json::object(vec![("schema", Json::str(JOURNAL_SCHEMA))]);
        writeln!(f, "{header}")
            .and_then(|()| f.flush())
            .map_err(err)?;
        return Ok(f);
    }
    let mut good = 0usize; // bytes of the verified prefix
    let mut first = true;
    for line in text.split_inclusive('\n') {
        let complete = line.ends_with('\n');
        let trimmed = line.trim();
        if first {
            let schema = Json::parse(trimmed)
                .ok()
                .filter(|_| complete)
                .and_then(|h| h.get("schema").and_then(Json::as_str).map(str::to_string));
            if schema.as_deref() != Some(JOURNAL_SCHEMA) {
                return Err(ServeError::new(format!(
                    "journal {}: not a {JOURNAL_SCHEMA} file",
                    path.display()
                )));
            }
            good += line.len();
            first = false;
            continue;
        }
        if !complete {
            break; // torn tail from a kill mid-append
        }
        if trimmed.is_empty() {
            good += line.len();
            continue;
        }
        let Some((key, entry)) = Json::parse(trimmed)
            .ok()
            .and_then(|j| journal_entry(&j).ok())
        else {
            break;
        };
        cache.insert(key, Arc::new(entry));
        good += line.len();
    }
    if good < text.len() {
        eprintln!(
            "serve: journal {}: dropping {} unverified tail bytes",
            path.display(),
            text.len() - good
        );
        let f = OpenOptions::new().write(true).open(path).map_err(err)?;
        f.set_len(good as u64).map_err(err)?;
    }
    OpenOptions::new().append(true).open(path).map_err(err)
}

/// Decodes one journal line into a cache entry, rejecting any outcome
/// that does not re-serialize to the exact bytes it was journaled as —
/// the cached response must be byte-identical to the original
/// computation's.
fn journal_entry(j: &Json) -> Result<((String, u64), CacheEntry), String> {
    let fingerprint = j.req_str("fingerprint")?.to_string();
    let seed = j.req_u64("seed")?;
    let name = j.req_str("scenario")?.to_string();
    let raw = j.req("outcome")?;
    let outcome = ScenarioOutcome::from_json(raw)?;
    let canonical = outcome.to_json();
    if canonical != *raw {
        return Err("outcome is not canonical".to_string());
    }
    let entry = scenario_entry(&name, &fingerprint, canonical);
    Ok(((fingerprint, seed), entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use hotnoc_scenario::spec::ScenarioSpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hotnoc-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn scenario_text(name: &str, seed: u64) -> String {
        format!(
            r#"{{
  "name": "{name}",
  "chip": {{"config": "A"}},
  "workload": {{"kind": "traffic", "pattern": "uniform", "rate": 0.05, "packet_len": 2, "cycles": 120}},
  "policy": {{"kind": "baseline"}},
  "mode": "cosim",
  "fidelity": "quick",
  "seed": {seed}
}}"#
        )
    }

    /// Starts a daemon on a unix socket in `dir`, waits until it answers
    /// pings, and returns the endpoint plus the serve() thread handle.
    fn start_daemon(
        dir: &Path,
        journal: bool,
    ) -> (
        Endpoint,
        std::thread::JoinHandle<Result<ServeSummary, ServeError>>,
    ) {
        let opts = ServeOptions {
            endpoint: Endpoint::Unix(dir.join("hotnoc.sock")),
            threads: 2,
            journal: journal.then(|| dir.join("serve.journal.jsonl")),
            trace: Some(dir.join("serve.trace.jsonl")),
            spool: dir.join("spool"),
        };
        let endpoint = opts.endpoint.clone();
        let handle = std::thread::spawn(move || serve(&opts));
        for _ in 0..200 {
            if client::ping(&endpoint).is_ok() {
                return (endpoint, handle);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("daemon did not come up");
    }

    #[test]
    fn repeat_submission_is_byte_identical_and_hits_the_cache() {
        let dir = tmp_dir("roundtrip");
        let (endpoint, handle) = start_daemon(&dir, true);

        let spec = Json::parse(&scenario_text("serve-a", 11)).unwrap();
        let line = client::submit_line("req-1", &spec);
        let first = client::request(&endpoint, &line).expect("first submission");
        assert_eq!(first.len(), 1);
        assert_eq!(client::response_status(&first), 0);
        assert!(first[0].contains("\"outcome\""), "{}", first[0]);
        assert!(
            !first[0].contains("cache"),
            "responses must not mark cache state: {}",
            first[0]
        );
        let second = client::request(&endpoint, &line).expect("repeat submission");
        assert_eq!(first, second, "cached response must be byte-identical");

        // A different seed is a different key, not a hit.
        let other = Json::parse(&scenario_text("serve-a", 12)).unwrap();
        let third = client::request(&endpoint, &client::submit_line("req-1", &other)).unwrap();
        assert_ne!(first, third);

        client::shutdown(&endpoint).expect("shutdown");
        let summary = handle.join().unwrap().expect("serve exits cleanly");
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.computed, 2);
        assert_eq!(summary.cache_hits, 1);

        // The hit is evidenced on the trace plane.
        let trace = std::fs::read_to_string(dir.join("serve.trace.jsonl")).unwrap();
        let doc = TraceDoc::parse(&trace).expect("valid hotnoc-trace-v1");
        assert_eq!(doc.events.len(), 1);
        assert!(trace.contains("\"kind\": \"cache_hit\""), "{trace}");
        assert!(trace.contains("serve-a"), "{trace}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_warm_load_survives_restart_and_drops_torn_tail() {
        let dir = tmp_dir("journal");
        let journal = dir.join("serve.journal.jsonl");
        let spec = Json::parse(&scenario_text("serve-j", 3)).unwrap();
        let line = client::submit_line("rq", &spec);

        let (endpoint, handle) = start_daemon(&dir, true);
        let first = client::request(&endpoint, &line).unwrap();
        client::shutdown(&endpoint).unwrap();
        handle.join().unwrap().unwrap();

        // Simulate a kill mid-append: a torn half-line at the tail.
        let mut text = std::fs::read_to_string(&journal).unwrap();
        assert!(text.starts_with(&format!("{{\"schema\": \"{JOURNAL_SCHEMA}\"}}")));
        text.push_str("{\"fingerprint\": \"dead");
        std::fs::write(&journal, &text).unwrap();

        let (endpoint, handle) = start_daemon(&dir, true);
        let warm = client::request(&endpoint, &line).unwrap();
        assert_eq!(first, warm, "warm-loaded response must reproduce bytes");
        client::shutdown(&endpoint).unwrap();
        let summary = handle.join().unwrap().unwrap();
        assert_eq!(summary.computed, 0, "journal must prevent recompute");
        assert_eq!(summary.cache_hits, 1);
        let clean = std::fs::read_to_string(&journal).unwrap();
        assert!(!clean.contains("dead"), "torn tail must be truncated");
        assert!(clean.ends_with('\n'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_and_invalid_submissions_fail_clean_without_killing_the_daemon() {
        let dir = tmp_dir("badinput");
        let (endpoint, handle) = start_daemon(&dir, false);

        // Unparsable line: status 2, connection dropped, daemon alive.
        let bad = client::request(&endpoint, "this is not json").unwrap();
        assert_eq!(client::response_status(&bad), 2);
        client::ping(&endpoint).expect("daemon survives malformed input");

        // Parsable but invalid spec: status 2 with the validator's message.
        let invalid = r#"{"id": "v1", "submit": {"name": "x"}}"#;
        let resp = client::request(&endpoint, invalid).unwrap();
        assert_eq!(client::response_status(&resp), 2);
        assert!(resp[0].contains("\"id\": \"v1\""), "{}", resp[0]);

        client::shutdown(&endpoint).unwrap();
        let summary = handle.join().unwrap().unwrap();
        assert_eq!(summary.computed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_submissions_stream_jobs_and_cache_whole_responses() {
        let dir = tmp_dir("campaign");
        let (endpoint, handle) = start_daemon(&dir, false);
        let campaign = r#"{
  "schema": "hotnoc-campaign-spec-v1",
  "name": "serve-camp",
  "configs": [{"config": "A"}],
  "workloads": [{"kind": "traffic", "pattern": "uniform", "rate": 0.05, "packet_len": 2, "cycles": 100}],
  "policies": ["baseline"],
  "fidelity": "quick",
  "seeds": [1, 2],
  "seed": 9
}"#;
        let spec = Json::parse(campaign).unwrap();
        let line = client::submit_line("camp-1", &spec);
        let first = client::request(&endpoint, &line).expect("campaign submission");
        assert_eq!(first.len(), 3, "2 job lines + summary: {first:?}");
        assert!(first[0].contains("\"job\": 0"), "{}", first[0]);
        assert!(first[1].contains("\"job\": 1"), "{}", first[1]);
        assert!(first[2].contains("\"jobs\": 2"), "{}", first[2]);
        assert_eq!(client::response_status(&first), 0);
        let second = client::request(&endpoint, &line).unwrap();
        assert_eq!(first, second, "campaign responses must be byte-identical");

        client::shutdown(&endpoint).unwrap();
        let summary = handle.join().unwrap().unwrap();
        assert_eq!(summary.computed, 1);
        assert_eq!(summary.cache_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submissions_during_drain_are_rejected_retryable() {
        let dir = tmp_dir("drain");
        let (endpoint, handle) = start_daemon(&dir, false);
        client::shutdown(&endpoint).unwrap();
        // The daemon may finish draining at any moment; until the socket
        // disappears, queued submissions must be rejected retryable.
        let spec = Json::parse(&scenario_text("late", 1)).unwrap();
        // A connection error means the daemon already fully drained —
        // equally clean; only an accepted request must be rejected right.
        if let Ok(lines) = client::request(&endpoint, &client::submit_line("late-1", &spec)) {
            assert_eq!(client::response_status(&lines), 1);
            assert!(lines[0].contains("\"retryable\": true"), "{}", lines[0]);
            assert!(lines[0].contains("draining"), "{}", lines[0]);
        }
        let summary = handle.join().unwrap().unwrap();
        assert_eq!(summary.computed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_with_foreign_schema_is_refused() {
        let dir = tmp_dir("foreign");
        let journal = dir.join("serve.journal.jsonl");
        std::fs::write(&journal, "{\"schema\": \"hotnoc-campaign-v1\"}\n").unwrap();
        let mut cache = Cache::new();
        let err = open_journal(&journal, &mut cache).unwrap_err();
        assert!(err.message.contains(JOURNAL_SCHEMA), "{}", err.message);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_loader_verifies_canonical_outcomes() {
        let dir = tmp_dir("canon");
        let journal = dir.join("serve.journal.jsonl");
        // A decodable record whose outcome is *not* canonical (fields out
        // of canonical order — "stall_us" before "phases"): the loader
        // must stop trusting the journal there, because its cached bytes
        // could not match what the computation originally streamed.
        let spec = ScenarioSpec::parse(&scenario_text("c", 1)).unwrap();
        let fp = spec.fingerprint();
        std::fs::write(
            &journal,
            format!(
                "{{\"schema\": \"{JOURNAL_SCHEMA}\"}}\n{{\"fingerprint\": \"{fp}\", \"seed\": 1, \
                 \"scenario\": \"c\", \"outcome\": {{\"kind\": \"plan-cost\", \"stall_us\": 1.5, \
                 \"phases\": 1, \"flit_hops\": 2, \"energy_uj\": 1.0, \"moves\": 3}}}}\n"
            ),
        )
        .unwrap();
        let mut cache = Cache::new();
        let _file = open_journal(&journal, &mut cache).unwrap();
        assert!(cache.is_empty(), "non-canonical record must not be cached");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
