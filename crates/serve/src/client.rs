//! The client side of the protocol: what `hotnoc submit`, `hotnoc serve
//! --shutdown` and the serve tests are built on.

use crate::protocol::{is_terminal, Endpoint};
use hotnoc_scenario::json::Json;
use std::io::{BufRead, BufReader, Write};

/// Sends one request line and reads response lines until the terminal
/// line (or EOF). Returns the raw lines, exactly as the daemon wrote
/// them — callers comparing repeat submissions compare these bytes.
///
/// # Errors
///
/// Propagates connection and stream I/O failures.
pub fn request(endpoint: &Endpoint, line: &str) -> std::io::Result<Vec<String>> {
    let mut stream = endpoint.connect()?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    loop {
        let mut l = String::new();
        if reader.read_line(&mut l)? == 0 {
            break; // daemon closed the connection
        }
        let l = l.trim_end_matches(['\r', '\n']).to_string();
        if l.is_empty() {
            continue;
        }
        let done = is_terminal(&l);
        lines.push(l);
        if done {
            break;
        }
    }
    Ok(lines)
}

/// Builds a submit request line for an already-parsed spec document
/// under `id`.
pub fn submit_line(id: &str, spec: &Json) -> String {
    Json::object(vec![("id", Json::str(id)), ("submit", spec.clone())]).to_string()
}

/// Probes a daemon; returns the pong line.
///
/// # Errors
///
/// As [`request`], plus an `UnexpectedEof` if the daemon answered with
/// nothing.
pub fn ping(endpoint: &Endpoint) -> std::io::Result<String> {
    one_line(endpoint, r#"{"op": "ping"}"#)
}

/// Asks a daemon to drain and exit; returns the acknowledgement line.
///
/// # Errors
///
/// As [`ping`].
pub fn shutdown(endpoint: &Endpoint) -> std::io::Result<String> {
    one_line(endpoint, r#"{"op": "shutdown"}"#)
}

fn one_line(endpoint: &Endpoint, line: &str) -> std::io::Result<String> {
    request(endpoint, line)?.into_iter().next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without responding",
        )
    })
}

/// The exit-code-equivalent status of a response: the terminal (last)
/// line's `"status"` field, following the CLI 0/1/2 convention. An empty
/// or unreadable response counts as a runtime failure (1).
pub fn response_status(lines: &[String]) -> u64 {
    lines
        .last()
        .and_then(|l| Json::parse(l).ok())
        .and_then(|j| j.get("status").and_then(Json::as_u64))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_lines_embed_the_spec_verbatim() {
        let spec = Json::parse(r#"{"name": "x", "seed": 3}"#).unwrap();
        assert_eq!(
            submit_line("r1", &spec),
            r#"{"id": "r1", "submit": {"name": "x", "seed": 3}}"#
        );
    }

    #[test]
    fn response_status_reads_the_terminal_line() {
        let lines = vec![
            r#"{"id": "a", "job": 0, "status": 0}"#.to_string(),
            r#"{"id": "a", "status": 2, "error": "boom"}"#.to_string(),
        ];
        assert_eq!(response_status(&lines), 2);
        assert_eq!(response_status(&[]), 1);
        assert_eq!(response_status(&["garbage".to_string()]), 1);
    }
}
