//! The newline-JSON wire protocol spoken between `hotnoc serve` and its
//! clients.
//!
//! Each request is one JSON object per line; each response is one or more
//! JSON object lines. A response line is **terminal** (last line of its
//! request's response) unless it carries a `"job"` field — campaigns
//! stream one `"job"` record per expanded scenario before their terminal
//! summary line. Every response carries a `"status"` field following the
//! CLI exit-code convention: `0` success, `1` runtime failure (with
//! `"retryable": true` when a drain rejected the request), `2` bad input.
//! The normative reference is `docs/SERVING.md`.

use hotnoc_scenario::campaign::CampaignSpec;
use hotnoc_scenario::json::Json;
use hotnoc_scenario::spec::ScenarioSpec;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Schema tag of the daemon's result-persistence journal.
pub const JOURNAL_SCHEMA: &str = "hotnoc-serve-journal-v1";

/// A bidirectional byte stream — the unix/tcp abstraction both protocol
/// ends run over.
pub trait Stream: Read + Write + Send {}
impl Stream for UnixStream {}
impl Stream for TcpStream {}

/// Where a daemon listens and a client connects.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP socket at this `addr:port`.
    Tcp(String),
}

impl Endpoint {
    /// Connects a client stream to the endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (no daemon, bad address, ...).
    pub fn connect(&self) -> std::io::Result<Box<dyn Stream>> {
        Ok(match self {
            Endpoint::Unix(path) => Box::new(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => Box::new(TcpStream::connect(addr.as_str())?),
        })
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// One parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe; answered with `{"status": 0, "pong": true}`.
    Ping,
    /// Begin a graceful drain: in-flight jobs finish and journal, new
    /// submissions are rejected as retryable, the daemon then exits 0.
    Shutdown,
    /// Run one spec (or answer it from the result cache). The submission
    /// is boxed so the op-only variants don't pay for a full spec's size.
    Submit {
        /// Client-chosen correlation id, echoed on every response line.
        id: String,
        /// What to run.
        submission: Box<Submission>,
    },
}

/// The payload of a submit request, classified by the presence of the
/// campaign `"schema"` field (scenario specs carry no schema tag).
#[derive(Debug)]
pub enum Submission {
    /// One scenario.
    Scenario(ScenarioSpec),
    /// A campaign (`"schema": "hotnoc-campaign-spec-v1"`).
    Campaign(CampaignSpec),
}

impl Submission {
    /// The result-cache key: `(canonical-JSON FNV-1a fingerprint, seed)`.
    pub fn key(&self) -> (String, u64) {
        match self {
            Submission::Scenario(s) => (s.fingerprint(), s.seed),
            Submission::Campaign(c) => (c.fingerprint(), c.seed),
        }
    }

    /// The spec's name (labels cache-hit trace events and log lines).
    pub fn name(&self) -> &str {
        match self {
            Submission::Scenario(s) => &s.name,
            Submission::Campaign(c) => &c.name,
        }
    }
}

/// Decodes a parsed request object. Syntax errors are the caller's
/// problem ([`Json::parse`] first); this layer rejects shape violations —
/// unknown ops, a missing id, an undecodable or invalid spec.
///
/// # Errors
///
/// Returns a description of the first violation (a status-2 response).
pub fn decode_request(j: &Json) -> Result<Request, String> {
    if let Some(op) = j.get("op") {
        return match op.as_str() {
            Some("ping") => Ok(Request::Ping),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(other) => Err(format!(
                r#"unknown op {other:?} (want "ping" or "shutdown")"#
            )),
            None => Err(r#"field "op" is not a string"#.to_string()),
        };
    }
    let id = j.req_str("id")?.to_string();
    let spec = j.req("submit")?;
    // Both decoders validate semantically, not just structurally.
    let submission = if spec.get("schema").is_some() {
        Submission::Campaign(CampaignSpec::from_json(spec)?)
    } else {
        Submission::Scenario(ScenarioSpec::from_json(spec)?)
    };
    Ok(Request::Submit {
        id,
        submission: Box::new(submission),
    })
}

/// Renders one response line: the `id` (when known) followed by the
/// payload fields, in canonical JSON. Identical payload + identical id ⇒
/// identical bytes — the serving layer's `cmp`-ability contract.
pub fn response_line(id: Option<&str>, fields: &[(String, Json)]) -> String {
    let mut all: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 1);
    if let Some(id) = id {
        all.push(("id".to_string(), Json::str(id)));
    }
    all.extend(fields.iter().cloned());
    Json::Object(all).to_string()
}

/// Whether a response line ends its request's response: every line except
/// a campaign's per-job records (which carry a `"job"` field). Unparsable
/// lines are treated as terminal so a confused client stops reading.
pub fn is_terminal(line: &str) -> bool {
    Json::parse(line).map_or(true, |j| j.get("job").is_none())
}

/// Error-response payload fields.
pub fn error_fields(status: u64, error: &str, retryable: bool) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("status".to_string(), Json::int(status)),
        ("error".to_string(), Json::str(error)),
    ];
    if retryable {
        fields.push(("retryable".to_string(), Json::Bool(true)));
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO: &str = r#"{
        "name": "p-one",
        "chip": {"config": "A"},
        "workload": {"kind": "traffic", "pattern": "uniform", "rate": 0.05, "packet_len": 2, "cycles": 100},
        "policy": {"kind": "baseline"},
        "mode": "cosim",
        "fidelity": "quick",
        "seed": 4
    }"#;

    fn parse(line: &str) -> Result<Request, String> {
        decode_request(&Json::parse(line).expect("syntactically valid"))
    }

    #[test]
    fn ops_parse_and_unknown_ops_are_rejected() {
        assert!(matches!(parse(r#"{"op": "ping"}"#), Ok(Request::Ping)));
        assert!(matches!(
            parse(r#"{"op": "shutdown"}"#),
            Ok(Request::Shutdown)
        ));
        assert!(parse(r#"{"op": "reboot"}"#).unwrap_err().contains("reboot"));
        assert!(parse(r#"{"op": 3}"#).is_err());
    }

    #[test]
    fn submissions_classify_by_schema_field() {
        let line = format!(r#"{{"id": "r1", "submit": {SCENARIO}}}"#);
        let Ok(Request::Submit { id, submission }) = parse(&line) else {
            panic!("expected a submit request");
        };
        assert_eq!(id, "r1");
        assert!(matches!(*submission, Submission::Scenario(_)));
        assert_eq!(submission.name(), "p-one");
        let (fp, seed) = submission.key();
        assert_eq!(fp.len(), 16);
        assert_eq!(seed, 4);

        // A schema field routes to the campaign decoder — which then
        // rejects this shape, rather than misreading it as a scenario.
        let tagged = SCENARIO.replacen('{', r#"{"schema": "hotnoc-campaign-spec-v1","#, 1);
        let line = format!(r#"{{"id": "r2", "submit": {tagged}}}"#);
        assert!(parse(&line).is_err());
    }

    #[test]
    fn submit_requires_an_id_and_a_valid_spec() {
        let no_id = format!(r#"{{"submit": {SCENARIO}}}"#);
        assert!(parse(&no_id).unwrap_err().contains("id"));
        let bad_spec = r#"{"id": "r1", "submit": {"name": "x"}}"#;
        assert!(parse(bad_spec).is_err());
    }

    #[test]
    fn response_lines_render_canonically_and_classify_terminality() {
        let fields = error_fields(1, "draining", true);
        let line = response_line(Some("r9"), &fields);
        assert_eq!(
            line,
            r#"{"id": "r9", "status": 1, "error": "draining", "retryable": true}"#
        );
        assert!(is_terminal(&line));
        let job = response_line(
            Some("r9"),
            &[
                ("job".to_string(), Json::int(0)),
                ("status".to_string(), Json::int(0)),
            ],
        );
        assert!(!is_terminal(&job));
        assert!(is_terminal("not json at all"));
    }
}
