//! # hotnoc-serve — the long-running submission daemon
//!
//! Batch invocations (`hotnoc scenario run`, `hotnoc campaign run`) pay
//! process start-up, chip calibration and thread-pool spin-up on every
//! call. `hotnoc serve` keeps one resident process warm instead: it
//! listens on a unix-domain socket (or TCP), accepts newline-JSON
//! scenario/campaign submissions, schedules them on a shared `minipool`,
//! and streams outcome records back as newline-JSON responses tagged with
//! the client's request id.
//!
//! * [`protocol`] — the wire protocol: request parsing (ping / shutdown /
//!   submit), response rendering, and the [`protocol::Endpoint`] address
//!   model shared by daemon and client.
//! * [`server`] — [`server::serve`]: the accept loop, per-connection
//!   protocol handler, the result cache keyed by
//!   `(FNV-1a spec fingerprint, seed)`, the `hotnoc-serve-journal-v1`
//!   persistence journal, and graceful drain.
//! * [`client`] — [`client::request`] and friends: what `hotnoc submit`
//!   and `hotnoc serve --shutdown` are built on.
//!
//! ## Determinism contract
//!
//! A repeat submission of a byte-identical spec returns byte-identical
//! response lines without recomputation. Responses deliberately carry no
//! "served from cache" marker — the evidence lives on the observability
//! plane instead ([`hotnoc_obs::TraceEvent::CacheHit`] events in the
//! daemon's shutdown trace, plus a stderr log line), so cached and
//! computed responses can be compared with `cmp`. The normative protocol
//! reference is `docs/SERVING.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ping, request, response_status, shutdown, submit_line};
pub use protocol::{Endpoint, Request, Submission, JOURNAL_SCHEMA};
pub use server::{serve, ServeError, ServeOptions, ServeSummary};
