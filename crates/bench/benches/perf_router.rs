//! Engineering benches for the cycle-accurate NoC simulator: cycle
//! throughput under synthetic load and saturation behaviour, from the
//! paper's 4x4 up to the 64x64 meshes the ROADMAP targets. Prints a
//! latency/offered-load curve once (the classic NoC characterization).
//!
//! `noc/steps_per_sec/16x16_idle` is the headline scaling scenario for the
//! occupancy-driven step loop (an idle large mesh must cost almost nothing
//! per cycle); the `32x32`/`64x64` `_t{1,2,4}` sweeps are the headline for
//! the striped parallel allocation sweep: identical traffic stepped with
//! the sweep pinned to 1, 2 and 4 worker threads. Every scenario pins its
//! thread count explicitly (and records it in the report metadata) so
//! numbers never silently depend on `HOTNOC_THREADS` or the host's core
//! count.

use criterion::{criterion_group, criterion_main, Criterion};
use hotnoc_noc::{Coord, Mesh, Network, NocConfig, TrafficGenerator, TrafficPattern};

/// Cycles simulated per bench iteration.
const CYCLES_PER_ITER: usize = 100;
/// Cycles of open-loop injection before timing starts, so the big-mesh
/// scenarios measure the saturated steady state rather than the fill ramp.
const WARMUP_CYCLES: usize = 200;

fn latency_load_curve() {
    println!("\nUniform-random latency/load curve (4x4 mesh, 4-flit packets):");
    println!(
        "{:>12} {:>16} {:>14}",
        "inject rate", "mean latency", "delivered"
    );
    for rate in [0.01, 0.05, 0.1, 0.2, 0.3] {
        let mesh = Mesh::square(4).expect("mesh");
        let mut net = Network::new(mesh, NocConfig::default());
        net.set_threads(1);
        let mut gen = TrafficGenerator::new(mesh, TrafficPattern::UniformRandom, rate, 4, 7);
        for _ in 0..5_000 {
            gen.tick(&mut net);
            net.step();
        }
        let _ = net.run_until_idle(200_000);
        println!(
            "{rate:>12.2} {:>16.1} {:>14}",
            net.stats().mean_latency().unwrap_or(f64::NAN),
            net.stats().packets_delivered
        );
    }
}

/// The corner-region hotspot pattern used by the scaling benches: traffic
/// concentrates on a 2x2 block near the mesh centre, the worst case the
/// paper's runtime reconfiguration is designed to flatten.
fn hotspot_pattern(side: usize) -> TrafficPattern {
    let c = (side / 2) as u8;
    TrafficPattern::Hotspot {
        nodes: vec![
            Coord::new(c - 1, c - 1),
            Coord::new(c, c - 1),
            Coord::new(c - 1, c),
            Coord::new(c, c),
        ],
        fraction: 0.6,
    }
}

/// Offered load (packets/node/cycle) ~1.5x above the uniform-random
/// saturation point of a `side`-wide mesh: bisection capacity is
/// `2*side/N` flits/node/cycle, i.e. `side/(2*N)` packets/node/cycle for
/// 4-flit packets. Keeps the big meshes fully loaded while bounding how
/// fast the open-loop source queues grow during a bench run.
fn near_saturation_rate(side: usize) -> f64 {
    1.5 * side as f64 / (2.0 * (side * side) as f64)
}

/// A pre-warmed network + generator pair stepping `CYCLES_PER_ITER` cycles
/// per bench iteration with the sweep pinned to `threads` workers.
fn steady_state_scenario(
    side: usize,
    pattern: TrafficPattern,
    rate: f64,
    seed: u64,
    threads: usize,
) -> (Network, TrafficGenerator) {
    let mesh = Mesh::square(side).expect("mesh");
    let mut net = Network::new(mesh, NocConfig::default());
    net.set_threads(threads);
    let mut gen = TrafficGenerator::new(mesh, pattern, rate, 4, seed);
    for _ in 0..WARMUP_CYCLES {
        gen.tick(&mut net);
        net.step();
    }
    (net, gen)
}

fn bench_router(c: &mut Criterion) {
    latency_load_curve();

    let mut group = c.benchmark_group("noc/steps_per_sec");
    for side in [4usize, 5, 8, 16] {
        group.meta(&format!("{side}x{side}"), 1);
        group.bench_function(format!("{side}x{side}_idle"), |b| {
            let mesh = Mesh::square(side).expect("mesh");
            let mut net = Network::new(mesh, NocConfig::default());
            net.set_threads(1);
            b.iter(|| net.run(CYCLES_PER_ITER as u64));
        });
        group.bench_function(format!("{side}x{side}_loaded"), |b| {
            let mesh = Mesh::square(side).expect("mesh");
            let mut net = Network::new(mesh, NocConfig::default());
            net.set_threads(1);
            let mut gen = TrafficGenerator::new(mesh, TrafficPattern::UniformRandom, 0.1, 4, 13);
            b.iter(|| {
                for _ in 0..CYCLES_PER_ITER {
                    gen.tick(&mut net);
                    net.step();
                }
            });
        });
    }
    for side in [8usize, 16] {
        group.meta(&format!("{side}x{side}"), 1);
        group.bench_function(format!("{side}x{side}_hotspot"), |b| {
            let mesh = Mesh::square(side).expect("mesh");
            let mut net = Network::new(mesh, NocConfig::default());
            net.set_threads(1);
            let mut gen = TrafficGenerator::new(mesh, hotspot_pattern(side), 0.05, 4, 29);
            b.iter(|| {
                for _ in 0..CYCLES_PER_ITER {
                    gen.tick(&mut net);
                    net.step();
                }
            });
        });
    }

    // Scenario-scale sweeps: 32x32 and 64x64 under sustained near-saturation
    // uniform and hotspot traffic, identical per thread count. The t1/t2/t4
    // triples answer "what does striping buy on this machine" directly;
    // `bench_regress` keeps each of them from regressing independently.
    for side in [32usize, 64] {
        let rate = near_saturation_rate(side);
        for threads in [1usize, 2, 4] {
            group.meta(&format!("{side}x{side}"), threads as u64);
            group.bench_function(format!("{side}x{side}_loaded_t{threads}"), |b| {
                let (mut net, mut gen) =
                    steady_state_scenario(side, TrafficPattern::UniformRandom, rate, 13, threads);
                b.iter(|| {
                    for _ in 0..CYCLES_PER_ITER {
                        gen.tick(&mut net);
                        net.step();
                    }
                });
            });
            group.bench_function(format!("{side}x{side}_hotspot_t{threads}"), |b| {
                let (mut net, mut gen) =
                    steady_state_scenario(side, hotspot_pattern(side), rate / 2.0, 29, threads);
                b.iter(|| {
                    for _ in 0..CYCLES_PER_ITER {
                        gen.tick(&mut net);
                        net.step();
                    }
                });
            });
        }
    }
    group.finish();

    c.bench_function("noc/transpose_burst_drain_4x4", |b| {
        let mesh = Mesh::square(4).expect("mesh");
        b.iter(|| {
            let mut net = Network::new(mesh, NocConfig::default());
            net.set_threads(1);
            let mut gen = TrafficGenerator::new(mesh, TrafficPattern::Transpose, 1.0, 4, 3);
            gen.tick(&mut net);
            net.run_until_idle(10_000).expect("drain");
        });
    });
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
