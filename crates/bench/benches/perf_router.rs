//! Engineering benches for the cycle-accurate NoC simulator: cycle
//! throughput under synthetic load and saturation behaviour, from the
//! paper's 4x4 up to the 16x16 meshes the ROADMAP targets. Prints a
//! latency/offered-load curve once (the classic NoC characterization).
//!
//! `noc/steps_per_sec/16x16_idle` is the headline scaling scenario: the
//! step loop must track occupancy, not topology size, so an idle large
//! mesh should cost almost nothing per cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use hotnoc_noc::{Coord, Mesh, Network, NocConfig, TrafficGenerator, TrafficPattern};

fn latency_load_curve() {
    println!("\nUniform-random latency/load curve (4x4 mesh, 4-flit packets):");
    println!(
        "{:>12} {:>16} {:>14}",
        "inject rate", "mean latency", "delivered"
    );
    for rate in [0.01, 0.05, 0.1, 0.2, 0.3] {
        let mesh = Mesh::square(4).expect("mesh");
        let mut net = Network::new(mesh, NocConfig::default());
        let mut gen = TrafficGenerator::new(mesh, TrafficPattern::UniformRandom, rate, 4, 7);
        for _ in 0..5_000 {
            gen.tick(&mut net);
            net.step();
        }
        let _ = net.run_until_idle(200_000);
        println!(
            "{rate:>12.2} {:>16.1} {:>14}",
            net.stats().mean_latency().unwrap_or(f64::NAN),
            net.stats().packets_delivered
        );
    }
}

/// The corner-region hotspot pattern used by the scaling benches: traffic
/// concentrates on a 2x2 block near the mesh centre, the worst case the
/// paper's runtime reconfiguration is designed to flatten.
fn hotspot_pattern(side: usize) -> TrafficPattern {
    let c = (side / 2) as u8;
    TrafficPattern::Hotspot {
        nodes: vec![
            Coord::new(c - 1, c - 1),
            Coord::new(c, c - 1),
            Coord::new(c - 1, c),
            Coord::new(c, c),
        ],
        fraction: 0.6,
    }
}

fn bench_router(c: &mut Criterion) {
    latency_load_curve();

    let mut group = c.benchmark_group("noc/steps_per_sec");
    for side in [4usize, 5, 8, 16] {
        group.bench_function(format!("{side}x{side}_idle"), |b| {
            let mesh = Mesh::square(side).expect("mesh");
            let mut net = Network::new(mesh, NocConfig::default());
            b.iter(|| net.run(100));
        });
        group.bench_function(format!("{side}x{side}_loaded"), |b| {
            let mesh = Mesh::square(side).expect("mesh");
            let mut net = Network::new(mesh, NocConfig::default());
            let mut gen = TrafficGenerator::new(mesh, TrafficPattern::UniformRandom, 0.1, 4, 13);
            b.iter(|| {
                for _ in 0..100 {
                    gen.tick(&mut net);
                    net.step();
                }
            });
        });
    }
    for side in [8usize, 16] {
        group.bench_function(format!("{side}x{side}_hotspot"), |b| {
            let mesh = Mesh::square(side).expect("mesh");
            let mut net = Network::new(mesh, NocConfig::default());
            let mut gen = TrafficGenerator::new(mesh, hotspot_pattern(side), 0.05, 4, 29);
            b.iter(|| {
                for _ in 0..100 {
                    gen.tick(&mut net);
                    net.step();
                }
            });
        });
    }
    group.finish();

    c.bench_function("noc/transpose_burst_drain_4x4", |b| {
        let mesh = Mesh::square(4).expect("mesh");
        b.iter(|| {
            let mut net = Network::new(mesh, NocConfig::default());
            let mut gen = TrafficGenerator::new(mesh, TrafficPattern::Transpose, 1.0, 4, 3);
            gen.tick(&mut net);
            net.run_until_idle(10_000).expect("drain");
        });
    });
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
