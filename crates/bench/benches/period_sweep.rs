//! Bench + regeneration harness for the **§3 migration-period sweep**
//! (109.3 / 437.2 / 874.4 µs → 1.6 % / <0.4 % / <0.2 % throughput penalty).
//!
//! Prints the reduced-fidelity sweep once (full fidelity:
//! `cargo run --release -p hotnoc-bench --bin report_period`), then
//! benchmarks the co-simulation at the three period settings.

use criterion::{criterion_group, criterion_main, Criterion};
use hotnoc_core::chip::Chip;
use hotnoc_core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc_core::cosim::{run_cosim, CosimParams};
use hotnoc_core::experiment::run_period_sweep;
use hotnoc_core::report::period_ascii;
use hotnoc_reconfig::MigrationScheme;

fn print_quick_sweep() {
    let table = run_period_sweep(
        ChipConfigId::A,
        MigrationScheme::XYShift,
        &[24, 96, 192],
        Fidelity::Quick,
        &CosimParams::quick(),
    )
    .expect("sweep");
    println!("\n[reduced fidelity] {}", period_ascii(&table));
}

fn bench_period(c: &mut Criterion) {
    print_quick_sweep();

    let mut chip = Chip::build(ChipSpec::of(ChipConfigId::A, Fidelity::Quick)).expect("build");
    let cal = chip.calibrate().expect("calibrate");

    let mut group = c.benchmark_group("period_sweep/cosim");
    group.sample_size(10);
    for blocks in [24u64, 96, 192] {
        group.bench_function(format!("{blocks}_blocks"), |b| {
            let params = CosimParams {
                period_blocks: blocks,
                ..CosimParams::quick()
            };
            b.iter(|| {
                run_cosim(&chip, &cal, Some(MigrationScheme::XYShift), &params).expect("cosim")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_period);
criterion_main!(benches);
