//! Engineering benches for the thermal solver: steady-state solve, network
//! construction and transient stepping — the inner loop of the
//! co-simulation (thousands of backward-Euler steps per experiment). The
//! `be_step`/`rk4_step` series sweeps mesh sizes up to 32x32 (2054 thermal
//! nodes) to capture how transient cost scales with the network.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotnoc_thermal::{Floorplan, Integrator, PackageConfig, RcNetwork, TransientSim};

fn build(side: usize, pkg: &PackageConfig) -> RcNetwork {
    let plan = Floorplan::mesh_grid(side, side, 4.36e-6).expect("plan");
    RcNetwork::build(&plan, pkg).expect("build")
}

fn bench_thermal(c: &mut Criterion) {
    let pkg = PackageConfig::date05_defaults();

    let mut group = c.benchmark_group("thermal/build");
    for side in [4usize, 5, 8, 16] {
        group.bench_function(format!("{side}x{side}"), |b| {
            let plan = Floorplan::mesh_grid(side, side, 4.36e-6).expect("plan");
            b.iter(|| RcNetwork::build(black_box(&plan), &pkg).expect("build"));
        });
    }
    group.finish();

    let net5 = build(5, &pkg);
    let power = vec![1.2; 25];

    c.bench_function("thermal/steady_state_5x5", |b| {
        b.iter(|| net5.steady_state(black_box(&power)).expect("solve"))
    });

    // Transient stepping across mesh sizes: the largest configs are where
    // dense O(n^2) stepping leaves an order of magnitude on the table.
    let mut group = c.benchmark_group("thermal/be_step");
    for side in [5usize, 8, 16, 32] {
        group.bench_function(format!("{side}x{side}"), |b| {
            let net = build(side, &pkg);
            let p = vec![1.2; side * side];
            let mut sim = TransientSim::new(&net, 5e-6, Integrator::BackwardEuler).expect("sim");
            sim.init_from_steady(&p).expect("init");
            b.iter(|| sim.step(black_box(&p)).expect("step"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("thermal/rk4_step");
    for side in [5usize, 16] {
        group.bench_function(format!("{side}x{side}"), |b| {
            let net = build(side, &pkg);
            let p = vec![1.2; side * side];
            let mut sim = TransientSim::new(&net, 5e-6, Integrator::Rk4).expect("sim");
            sim.init_from_steady(&p).expect("init");
            b.iter(|| sim.step(black_box(&p)).expect("step"))
        });
    }
    group.finish();

    c.bench_function("thermal/cosim_window_1ms_5x5", |b| {
        // 200 BE steps of 5 us = 1 ms of simulated time: the unit of work
        // the migration co-simulation performs per millisecond.
        b.iter(|| {
            let mut sim = TransientSim::new(&net5, 5e-6, Integrator::BackwardEuler).expect("sim");
            sim.init_from_steady(&power).expect("init");
            for _ in 0..200 {
                sim.step(&power).expect("step");
            }
            sim.peak_block_temp()
        })
    });
}

criterion_group!(benches, bench_thermal);
criterion_main!(benches);
