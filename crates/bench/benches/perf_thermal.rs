//! Engineering benches for the thermal solver: steady-state solve, network
//! construction and transient stepping — the inner loop of the
//! co-simulation (thousands of backward-Euler steps per experiment).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotnoc_thermal::{Floorplan, Integrator, PackageConfig, RcNetwork, TransientSim};

fn bench_thermal(c: &mut Criterion) {
    let pkg = PackageConfig::date05_defaults();

    let mut group = c.benchmark_group("thermal/build");
    for side in [4usize, 5, 8] {
        group.bench_function(format!("{side}x{side}"), |b| {
            let plan = Floorplan::mesh_grid(side, side, 4.36e-6).expect("plan");
            b.iter(|| RcNetwork::build(black_box(&plan), &pkg).expect("build"));
        });
    }
    group.finish();

    let plan5 = Floorplan::mesh_grid(5, 5, 4.36e-6).expect("plan");
    let net5 = RcNetwork::build(&plan5, &pkg).expect("build");
    let power = vec![1.2; 25];

    c.bench_function("thermal/steady_state_5x5", |b| {
        b.iter(|| net5.steady_state(black_box(&power)).expect("solve"))
    });

    c.bench_function("thermal/be_step_5x5", |b| {
        let mut sim = TransientSim::new(&net5, 5e-6, Integrator::BackwardEuler).expect("sim");
        sim.init_from_steady(&power).expect("init");
        b.iter(|| sim.step(black_box(&power)).expect("step"))
    });

    c.bench_function("thermal/rk4_step_5x5", |b| {
        let mut sim = TransientSim::new(&net5, 5e-6, Integrator::Rk4).expect("sim");
        sim.init_from_steady(&power).expect("init");
        b.iter(|| sim.step(black_box(&power)).expect("step"))
    });

    c.bench_function("thermal/cosim_window_1ms_5x5", |b| {
        // 200 BE steps of 5 us = 1 ms of simulated time: the unit of work
        // the migration co-simulation performs per millisecond.
        b.iter(|| {
            let mut sim = TransientSim::new(&net5, 5e-6, Integrator::BackwardEuler).expect("sim");
            sim.init_from_steady(&power).expect("init");
            for _ in 0..200 {
                sim.step(&power).expect("step");
            }
            sim.peak_block_temp()
        })
    });
}

criterion_group!(benches, bench_thermal);
criterion_main!(benches);
