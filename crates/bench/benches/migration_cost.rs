//! Bench + regeneration harness for the **§2.1–2.2 migration cost model**:
//! congestion-free phased planning, deterministic stall times and
//! state-transfer energy (the paper's "energy consumed during the migration
//! operation" and rotation's "largest energy penalty").

use criterion::{criterion_group, criterion_main, Criterion};
use hotnoc_core::configs::{ChipConfigId, Fidelity};
use hotnoc_core::cosim::CosimParams;
use hotnoc_core::experiment::run_migration_cost;
use hotnoc_core::report::migration_cost_ascii;
use hotnoc_noc::Mesh;
use hotnoc_reconfig::phases::PhaseCostModel;
use hotnoc_reconfig::{MigrationPlan, MigrationScheme, StateSpec};

fn print_cost_tables() {
    for id in [ChipConfigId::A, ChipConfigId::E] {
        let rows =
            run_migration_cost(id, Fidelity::Quick, &CosimParams::quick()).expect("cost rows");
        println!("\n[config {id}]\n{}", migration_cost_ascii(&rows));
    }
}

fn bench_migration_cost(c: &mut Criterion) {
    print_cost_tables();

    let mut group = c.benchmark_group("migration_cost/plan");
    for side in [4usize, 5, 8] {
        let mesh = Mesh::square(side).expect("valid mesh");
        for scheme in [MigrationScheme::Rotation, MigrationScheme::XYShift] {
            group.bench_function(
                format!("{side}x{side}_{}", scheme.to_string().replace(' ', "_")),
                |b| {
                    b.iter(|| {
                        MigrationPlan::plan(
                            mesh,
                            scheme,
                            &StateSpec::default(),
                            &PhaseCostModel::default(),
                        )
                    })
                },
            );
        }
    }
    group.finish();

    c.bench_function("migration_cost/per_tile_flit_hops_5x5", |b| {
        let mesh = Mesh::square(5).expect("valid mesh");
        let plan = MigrationPlan::plan(
            mesh,
            MigrationScheme::Rotation,
            &StateSpec::default(),
            &PhaseCostModel::default(),
        );
        b.iter(|| plan.per_tile_flit_hops(mesh))
    });
}

criterion_group!(benches, bench_migration_cost);
criterion_main!(benches);
