//! Engineering benches for the LDPC workload: construction, encoding,
//! decoding, and the NoC application block that feeds the thermal flow.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotnoc_ldpc::app::{ComputeModel, LdpcNocApp};
use hotnoc_ldpc::channel::AwgnChannel;
use hotnoc_ldpc::schedule::MessageParams;
use hotnoc_ldpc::{ClusterMapping, Encoder, LdpcCode, MinSumDecoder, SumProductDecoder};
use hotnoc_noc::{Mesh, Network, NocConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_ldpc(c: &mut Criterion) {
    c.bench_function("ldpc/gallager_construction_1200", |b| {
        b.iter(|| LdpcCode::gallager(1200, 3, 6, black_box(7)).expect("code"))
    });

    let code = LdpcCode::gallager(1200, 3, 6, 7).expect("code");
    let encoder = Encoder::new(&code).expect("encoder");
    let mut rng = StdRng::seed_from_u64(5);
    let msg: Vec<bool> = (0..encoder.k()).map(|_| rng.gen()).collect();
    let word = encoder.encode(&msg).expect("encode");
    let mut chan = AwgnChannel::new(3.0, code.rate(), 3);
    let llrs = chan.transmit(&word);

    c.bench_function("ldpc/encoder_build_1200", |b| {
        b.iter(|| Encoder::new(black_box(&code)).expect("encoder"))
    });

    c.bench_function("ldpc/encode_1200", |b| {
        b.iter(|| encoder.encode(black_box(&msg)).expect("encode"))
    });

    c.bench_function("ldpc/min_sum_decode_1200", |b| {
        let dec = MinSumDecoder::default();
        b.iter(|| dec.decode(&code, black_box(&llrs)))
    });

    c.bench_function("ldpc/sum_product_decode_1200", |b| {
        let dec = SumProductDecoder::default();
        b.iter(|| dec.decode(&code, black_box(&llrs)))
    });

    let mut group = c.benchmark_group("ldpc/noc_block");
    group.sample_size(10);
    group.bench_function("4x4_10iters", |b| {
        let code = LdpcCode::gallager(960, 3, 6, 7).expect("code");
        let mapping = ClusterMapping::contiguous(&code, 16).expect("mapping");
        let mut app = LdpcNocApp::new(
            code,
            mapping,
            LdpcNocApp::identity_placement(16),
            MessageParams::default(),
            ComputeModel::default(),
        )
        .expect("app");
        b.iter(|| {
            let mut net = Network::new(Mesh::square(4).expect("mesh"), NocConfig::default());
            app.run_block(&mut net, 10).expect("block")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ldpc);
criterion_main!(benches);
