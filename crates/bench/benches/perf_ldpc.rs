//! Engineering benches for the LDPC workload: construction, encoding,
//! decoding, and the NoC application block that feeds the thermal flow.
//!
//! The decode ids measure the steady-state production path — one
//! [`DecoderWorkspace`] reused across blocks, so per-block work is the two
//! edge-array sweeps and nothing else. `min_sum_decode_1200_cold` keeps the
//! convenience API (fresh workspace, CSR rebuild per call) on the books so
//! the two paths stay individually visible to the regression gate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotnoc_ldpc::app::{ComputeModel, LdpcNocApp};
use hotnoc_ldpc::channel::AwgnChannel;
use hotnoc_ldpc::schedule::MessageParams;
use hotnoc_ldpc::{
    ClusterMapping, DecoderWorkspace, Encoder, LayeredMinSumDecoder, LdpcCode, MinSumDecoder,
    SumProductDecoder,
};
use hotnoc_noc::{Mesh, Network, NocConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A (3,6)-regular code plus one noisy observation of a random codeword at
/// the given SNR — the shared decode workload.
fn decode_workload(n: usize, snr_db: f64) -> (LdpcCode, Vec<f64>) {
    let code = LdpcCode::gallager(n, 3, 6, 7).expect("code");
    let encoder = Encoder::new(&code).expect("encoder");
    let mut rng = StdRng::seed_from_u64(5);
    let msg: Vec<bool> = (0..encoder.k()).map(|_| rng.gen()).collect();
    let word = encoder.encode(&msg).expect("encode");
    let mut chan = AwgnChannel::new(snr_db, code.rate(), 3);
    let llrs = chan.transmit(&word);
    (code, llrs)
}

fn bench_ldpc(c: &mut Criterion) {
    c.bench_function("ldpc/gallager_construction_1200", |b| {
        b.iter(|| LdpcCode::gallager(1200, 3, 6, black_box(7)).expect("code"))
    });

    let (code, llrs) = decode_workload(1200, 3.0);
    let encoder = Encoder::new(&code).expect("encoder");
    let mut rng = StdRng::seed_from_u64(5);
    let msg: Vec<bool> = (0..encoder.k()).map(|_| rng.gen()).collect();

    c.bench_function("ldpc/encoder_build_1200", |b| {
        b.iter(|| Encoder::new(black_box(&code)).expect("encoder"))
    });

    c.bench_function("ldpc/encode_1200", |b| {
        b.iter(|| encoder.encode(black_box(&msg)).expect("encode"))
    });

    // Headline steady-state decode ids (the before/after comparators for
    // the PERF_PLAN decoder card).
    c.bench_function("ldpc/min_sum_decode_1200", |b| {
        let dec = MinSumDecoder::default();
        let mut ws = DecoderWorkspace::for_code(&code);
        b.iter(|| dec.decode_with(&code, black_box(&llrs), &mut ws))
    });

    c.bench_function("ldpc/sum_product_decode_1200", |b| {
        let dec = SumProductDecoder::default();
        let mut ws = DecoderWorkspace::for_code(&code);
        b.iter(|| dec.decode_with(&code, black_box(&llrs), &mut ws))
    });

    // The convenience API: allocates and rebuilds the CSR topology every
    // block, so its gap to the steady-state id prices the workspace reuse.
    c.bench_function("ldpc/min_sum_decode_1200_cold", |b| {
        let dec = MinSumDecoder::default();
        b.iter(|| dec.decode(&code, black_box(&llrs)))
    });

    // Code-size sweep over every decoder, steady-state path. The `mesh`
    // meta slot carries the block length (the decode analogue of a mesh
    // size); decoding is single-threaded.
    let mut group = c.benchmark_group("ldpc/decode");
    for n in [480usize, 1200, 4800] {
        let (code, llrs) = decode_workload(n, 3.0);
        group.meta(&format!("n{n}"), 1);
        group.bench_function(format!("min_sum_{n}"), |b| {
            let dec = MinSumDecoder::default();
            let mut ws = DecoderWorkspace::for_code(&code);
            b.iter(|| dec.decode_with(&code, black_box(&llrs), &mut ws))
        });
        group.bench_function(format!("sum_product_{n}"), |b| {
            let dec = SumProductDecoder::default();
            let mut ws = DecoderWorkspace::for_code(&code);
            b.iter(|| dec.decode_with(&code, black_box(&llrs), &mut ws))
        });
        group.bench_function(format!("layered_{n}"), |b| {
            let dec = LayeredMinSumDecoder::default();
            let mut ws = DecoderWorkspace::for_code(&code);
            b.iter(|| dec.decode_with(&code, black_box(&llrs), &mut ws))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ldpc/noc_block");
    group.sample_size(10);
    group.meta("4x4", 1);
    group.bench_function("4x4_10iters", |b| {
        let code = LdpcCode::gallager(960, 3, 6, 7).expect("code");
        let mapping = ClusterMapping::contiguous(&code, 16).expect("mapping");
        let mut app = LdpcNocApp::new(
            code,
            mapping,
            LdpcNocApp::identity_placement(16),
            MessageParams::default(),
            ComputeModel::default(),
        )
        .expect("app");
        b.iter(|| {
            let mut net = Network::new(Mesh::square(4).expect("mesh"), NocConfig::default());
            app.run_block(&mut net, 10).expect("block")
        })
    });
    // Numeric decode + induced NoC traffic in one measurement: the decode
    // threads the reusable workspace through `run_block_decoding`.
    group.bench_function("4x4_decoded", |b| {
        let (code, llrs) = decode_workload(960, 3.0);
        let mapping = ClusterMapping::contiguous(&code, 16).expect("mapping");
        let mut app = LdpcNocApp::new(
            code,
            mapping,
            LdpcNocApp::identity_placement(16),
            MessageParams::default(),
            ComputeModel::default(),
        )
        .expect("app");
        let dec = MinSumDecoder::default();
        let mut ws = DecoderWorkspace::for_code(app.code());
        b.iter(|| {
            let mut net = Network::new(Mesh::square(4).expect("mesh"), NocConfig::default());
            app.run_block_decoding(&mut net, &llrs, &mut ws, |c, l, w| dec.decode_with(c, l, w))
                .expect("block")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ldpc);
criterion_main!(benches);
