//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * state-transfer size vs stall time (the throughput knob of §3),
//! * per-phase overhead vs migration cost,
//! * mesh scaling of the phased planner (4x4 → 8x8),
//! * routing algorithm (XY vs YX) under the LDPC workload.

use criterion::{criterion_group, criterion_main, Criterion};
use hotnoc_ldpc::app::{ComputeModel, LdpcNocApp};
use hotnoc_ldpc::schedule::MessageParams;
use hotnoc_ldpc::{ClusterMapping, LdpcCode};
use hotnoc_noc::{Mesh, Network, NocConfig, RoutingKind};
use hotnoc_reconfig::phases::PhaseCostModel;
use hotnoc_reconfig::{MigrationPlan, MigrationScheme, StateSpec};

fn print_state_size_ablation() {
    println!("\nAblation: per-PE state size vs migration stall (5x5, X-Y shift / Rot):");
    println!(
        "{:>12} {:>10} {:>14} {:>14}",
        "state bits", "flits/PE", "XYS stall us", "Rot stall us"
    );
    let mesh = Mesh::square(5).expect("mesh");
    for state_bits in [8_192u64, 16_384, 45_056, 90_112] {
        let spec = StateSpec {
            config_bits: 4_096,
            state_bits,
            flit_bits: 64,
        };
        let stall = |scheme| {
            MigrationPlan::plan(mesh, scheme, &spec, &PhaseCostModel::default()).total_cycles()
                as f64
                / 500.0
        };
        println!(
            "{:>12} {:>10} {:>14.2} {:>14.2}",
            state_bits,
            spec.flits_per_pe(),
            stall(MigrationScheme::XYShift),
            stall(MigrationScheme::Rotation)
        );
    }
}

fn print_overhead_ablation() {
    println!("\nAblation: per-phase overhead vs rotation migration cost (5x5):");
    println!("{:>16} {:>12} {:>14}", "overhead cyc", "phases", "stall us");
    let mesh = Mesh::square(5).expect("mesh");
    for overhead in [0u32, 32, 96, 256] {
        let cost = PhaseCostModel {
            cycles_per_hop: 2,
            phase_overhead_cycles: overhead,
        };
        let plan = MigrationPlan::plan(
            mesh,
            MigrationScheme::Rotation,
            &StateSpec::default(),
            &cost,
        );
        println!(
            "{:>16} {:>12} {:>14.2}",
            overhead,
            plan.num_phases(),
            plan.total_cycles() as f64 / 500.0
        );
    }
}

fn bench_ablation(c: &mut Criterion) {
    print_state_size_ablation();
    print_overhead_ablation();

    // Mesh scaling of the planner (is congestion-free planning viable for
    // the 64-PE chips the migration unit addresses?).
    let mut group = c.benchmark_group("ablation/planner_scaling");
    for side in [4usize, 5, 6, 8] {
        group.bench_function(format!("{side}x{side}_rotation"), |b| {
            let mesh = Mesh::square(side).expect("mesh");
            b.iter(|| {
                MigrationPlan::plan(
                    mesh,
                    MigrationScheme::Rotation,
                    &StateSpec::default(),
                    &PhaseCostModel::default(),
                )
            })
        });
    }
    group.finish();

    // Routing algorithm ablation under the real workload.
    let mut group = c.benchmark_group("ablation/routing");
    group.sample_size(10);
    for routing in [RoutingKind::Xy, RoutingKind::Yx] {
        group.bench_function(format!("{routing:?}_ldpc_block"), |b| {
            let code = LdpcCode::gallager(960, 3, 6, 7).expect("code");
            let mapping = ClusterMapping::contiguous(&code, 16).expect("mapping");
            let mut app = LdpcNocApp::new(
                code,
                mapping,
                LdpcNocApp::identity_placement(16),
                MessageParams::default(),
                ComputeModel::default(),
            )
            .expect("app");
            b.iter(|| {
                let mesh = Mesh::square(4).expect("mesh");
                let mut net =
                    Network::try_new(mesh, NocConfig::default(), routing).expect("network");
                app.run_block(&mut net, 5).expect("block")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
