//! Bench + regeneration harness for **Table 1** (transformation functions).
//!
//! Prints the table once, then benchmarks the migration-unit datapath: the
//! paper argues the unit is "small, fast, and low power" because the
//! transforms are trivial arithmetic on 3-bit operands — these benches put
//! numbers on "fast" (nanoseconds per full-chip remap).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hotnoc_noc::Mesh;
use hotnoc_reconfig::{MigrationScheme, MigrationUnit, OrbitDecomposition};

fn print_table1() {
    println!("\nTable 1. Transformation Functions");
    println!("{:<16}{:<18}{:<18}", "", "New X", "New Y");
    for s in [
        MigrationScheme::Rotation,
        MigrationScheme::XMirror,
        MigrationScheme::XTranslation { offset: 1 },
    ] {
        let (x, y) = s.table1_row();
        println!("{:<16}{x:<18}{y:<18}", s.to_string());
    }
}

fn bench_transforms(c: &mut Criterion) {
    print_table1();
    let mesh = Mesh::square(8).expect("valid mesh");
    let coords: Vec<_> = mesh.iter_coords().collect();

    let mut group = c.benchmark_group("table1/apply_full_chip");
    for scheme in MigrationScheme::FIGURE1 {
        group.bench_function(scheme.to_string().replace(' ', "_"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for &co in &coords {
                    let out = scheme.apply(black_box(co), mesh);
                    acc = acc.wrapping_add(out.x as u32 + out.y as u32);
                }
                acc
            })
        });
    }
    group.finish();

    c.bench_function("table1/permutation_5x5", |b| {
        let mesh = Mesh::square(5).expect("valid mesh");
        b.iter(|| MigrationScheme::Rotation.permutation(black_box(mesh)))
    });

    c.bench_function("table1/orbit_decomposition_5x5", |b| {
        let mesh = Mesh::square(5).expect("valid mesh");
        b.iter(|| OrbitDecomposition::new(black_box(MigrationScheme::XYShift), mesh))
    });

    c.bench_function("table1/migration_unit_remap_64pe", |b| {
        let mesh = Mesh::square(8).expect("valid mesh");
        let mut unit = MigrationUnit::new(mesh, MigrationScheme::Rotation);
        let coords: Vec<_> = mesh.iter_coords().collect();
        b.iter(|| {
            for &co in &coords {
                black_box(unit.transform(co));
            }
        })
    });
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
