//! Shared helpers for the benchmark harness and report binaries.

/// Default cosim parameters used by the paper-exhibit reports: full horizon
/// at full fidelity.
pub fn full_params() -> hotnoc_core::CosimParams {
    hotnoc_core::CosimParams::default()
}

/// Writes `content` to `path` and prints a note.
pub fn save(path: &str, content: &str) {
    match std::fs::write(path, content) {
        Ok(()) => println!("[saved {path}]"),
        Err(e) => eprintln!("[failed to save {path}: {e}]"),
    }
}
