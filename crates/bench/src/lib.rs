//! Shared helpers for the benchmark harness and report binaries.

/// Default cosim parameters used by the paper-exhibit reports: full horizon
/// at full fidelity.
pub fn full_params() -> hotnoc_core::CosimParams {
    hotnoc_core::CosimParams::default()
}

/// Writes `content` to `path` and prints a note.
///
/// # Errors
///
/// Returns the underlying error (annotated with the path) so report
/// binaries can propagate a failed artifact write to a non-zero exit code
/// instead of exiting 0 with the exhibit silently missing.
pub fn save(path: &str, content: &str) -> std::io::Result<()> {
    std::fs::write(path, content)
        .map_err(|e| std::io::Error::new(e.kind(), format!("failed to save {path}: {e}")))?;
    println!("[saved {path}]");
    Ok(())
}
