//! Regenerates **Figure 1** of the paper: reduction in peak temperature per
//! configuration (A–E) under each migration scheme, plus the §3 averages.
//!
//! Since the campaign engine landed this binary is a thin wrapper over the
//! built-in `fig1` campaign: the sweep runs in parallel (respecting
//! `HOTNOC_THREADS`), journals to `CAMPAIGN_fig1.manifest.jsonl` in the
//! working directory — so a killed run resumes where it stopped — and
//! leaves the machine-readable `CAMPAIGN_fig1.json` next to `fig1.csv`.
//!
//! Usage:
//!   report_fig1            # full transient co-simulation (the figure)
//!   report_fig1 --predict  # fast orbit-average predictor only
//!   report_fig1 --quick    # reduced-fidelity smoke run
//!
//! Exits non-zero if the sweep fails or an artifact cannot be written.

use hotnoc_core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc_core::cosim::predicted_reduction;
use hotnoc_core::experiment::{Fig1Row, Fig1Table};
use hotnoc_core::report;
use hotnoc_core::Chip;
use hotnoc_reconfig::MigrationScheme;
use hotnoc_scenario::builtin::builtin;
use hotnoc_scenario::exhibits;
use hotnoc_scenario::runner::{run_campaign, RunnerOptions};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().collect();
    let predict_only = args.iter().any(|a| a == "--predict");
    let quick = args.iter().any(|a| a == "--quick");
    let fidelity = if quick {
        Fidelity::Quick
    } else {
        Fidelity::Full
    };

    if predict_only {
        run_predictor(fidelity)?;
        return Ok(());
    }

    let spec = builtin("fig1", fidelity).expect("fig1 is a builtin");
    let run = run_campaign(
        &spec,
        &RunnerOptions {
            progress: true,
            ..RunnerOptions::default()
        },
    )?;
    let table = exhibits::fig1_table(&run.completed).map_err(std::io::Error::other)?;
    println!("{}", report::fig1_ascii(&table));
    print_notes(&table);
    hotnoc_bench::save("fig1.csv", &report::fig1_csv(&table))?;
    Ok(())
}

fn run_predictor(fidelity: Fidelity) -> Result<(), Box<dyn Error>> {
    println!("Orbit-average predictor (upper bound, no migration energy):");
    println!(
        "{:<14}{:>10}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "Config", "block us", "Rot", "X Mirror", "X-Y Mirror", "Right Shift", "X-Y Shift"
    );
    for id in ChipConfigId::ALL {
        let mut chip = Chip::build(ChipSpec::of(id, fidelity))?;
        let cal = chip.calibrate()?;
        print!(
            "{:<14}{:>10.1}",
            format!("{} ({:.2})", id, chip.spec().base_peak_celsius),
            cal.block_seconds * 1e6
        );
        for scheme in MigrationScheme::FIGURE1 {
            let r = predicted_reduction(&chip, &cal, scheme)?;
            print!("{r:>12.2}");
        }
        println!();
    }
    Ok(())
}

fn print_notes(table: &Fig1Table) {
    let avg = table.average_reductions();
    println!("\nSection 3 cross-checks:");
    println!(
        "  X-Y Shift average reduction: {:.2} C (paper: 4.62 C, highest)",
        avg[4]
    );
    println!(
        "  Rotation  average reduction: {:.2} C (paper: 4.15 C, second)",
        avg[0]
    );
    let e_row: &Fig1Row = &table.rows[4];
    println!(
        "  Rotation on E: reduction {:.2} C (paper: negative), mean-temp increase {:.2} C (paper: ~0.3 C)",
        e_row.results[0].reduction,
        e_row.results[0].mean_temp_increase()
    );
    let a_row = &table.rows[0];
    let best_a = a_row
        .results
        .iter()
        .map(|r| r.reduction)
        .fold(f64::MIN, f64::max);
    println!("  Best reduction on A: {best_a:.2} C (paper: up to 8 C)");
    println!(
        "  X-Y Shift throughput penalty at 1-block period: {:.2}% (paper: 1.6%)",
        a_row.results[4].throughput_penalty * 100.0
    );
}
