//! Validates `BENCH_*.json` bench reports and gates performance
//! regressions against the committed baseline. Grown out of the former
//! `check_bench_json` validator.
//!
//! Usage:
//!
//! ```text
//! bench_regress check <BENCH_*.json> [...]
//! bench_regress compare --baseline <dir> --current <dir> [--threshold-pct <p>]
//! ```
//!
//! `check` validates each file against the `hotnoc-bench-v1`/`-v2` schemas
//! (CI's bench-smoke job). `compare` matches every `BENCH_*.json` in the
//! current directory against the file of the same name under the baseline
//! directory, computes the per-id median-time ratio current/baseline, and
//! fails (exit 1) if any group's **median ratio** exceeds `1 + p/100`
//! (default `p = 15`). The median-of-ratios verdict tolerates individual
//! noisy ids while still catching a broad slowdown; per-id ratios above
//! the threshold are printed as warnings either way.
//!
//! Exit codes: 0 = ok, 1 = regression detected, 2 = usage/IO/schema error.

use criterion::report::{parse_document, BenchReport};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") if args.len() > 1 => check(&args[1..]),
        Some("compare") => match parse_compare_args(&args[1..]) {
            Ok((baseline, current, threshold_pct)) => compare(&baseline, &current, threshold_pct),
            Err(e) => {
                eprintln!("bench_regress: {e}");
                usage()
            }
        },
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_regress check <BENCH_*.json> [...]\n\
         \x20      bench_regress compare --baseline <dir> --current <dir> \
         [--threshold-pct <p>]"
    );
    ExitCode::from(2)
}

fn parse_compare_args(args: &[String]) -> Result<(String, String, f64), String> {
    let (mut baseline, mut current, mut threshold) = (None, None, 15.0f64);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(value()?),
            "--current" => current = Some(value()?),
            "--threshold-pct" => {
                threshold = value()?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --threshold-pct: {e}"))?;
                if !threshold.is_finite() || threshold < 0.0 {
                    return Err("--threshold-pct must be a non-negative number".into());
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((
        baseline.ok_or("missing --baseline <dir>")?,
        current.ok_or("missing --current <dir>")?,
        threshold,
    ))
}

fn load(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    parse_document(&text)
}

/// Schema validation over explicit files (the old `check_bench_json`).
fn check(paths: &[String]) -> ExitCode {
    let mut ok = true;
    for path in paths {
        match load(Path::new(path)) {
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
            Ok(doc) => {
                let env = doc
                    .env
                    .as_ref()
                    .map(|e| {
                        format!(
                            ", env: threads={} parallelism={} os={}",
                            e.threads, e.available_parallelism, e.os
                        )
                    })
                    .unwrap_or_default();
                println!(
                    "{path}: ok ({}, {} results{env})",
                    doc.schema,
                    doc.records.len()
                );
                if doc.records.is_empty() {
                    eprintln!("{path}: INVALID: no results recorded");
                    ok = false;
                }
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Baseline comparison over every `BENCH_*.json` group in `current_dir`.
fn compare(baseline_dir: &str, current_dir: &str, threshold_pct: f64) -> ExitCode {
    let entries = match std::fs::read_dir(current_dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_regress: cannot read {current_dir}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut names: Vec<String> = entries
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        eprintln!("bench_regress: no BENCH_*.json files in {current_dir}");
        return ExitCode::from(2);
    }

    let limit = 1.0 + threshold_pct / 100.0;
    let mut regressed = false;
    let mut hard_error = false;

    // A baseline group with no current counterpart means the gate silently
    // lost coverage (bench renamed, report failed to save) — hard error.
    if let Ok(base_entries) = std::fs::read_dir(baseline_dir) {
        for name in base_entries
            .filter_map(Result::ok)
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        {
            if !names.contains(&name) {
                eprintln!(
                    "bench_regress: baseline group {name} has no report in \
                     {current_dir} — gate coverage lost"
                );
                hard_error = true;
            }
        }
    }
    for name in &names {
        let cur_path = Path::new(current_dir).join(name);
        let base_path = Path::new(baseline_dir).join(name);
        let cur = match load(&cur_path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{}: INVALID: {e}", cur_path.display());
                hard_error = true;
                continue;
            }
        };
        if !base_path.exists() {
            println!("{name}: no baseline committed — skipping (new group?)");
            continue;
        }
        let base = match load(&base_path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{}: INVALID: {e}", base_path.display());
                hard_error = true;
                continue;
            }
        };

        if let (Some(b), Some(c)) = (&base.env, &cur.env) {
            if b.available_parallelism != c.available_parallelism || b.os != c.os {
                println!(
                    "{name}: note: baseline env (parallelism={}, {}) differs from \
                     current (parallelism={}, {}) — ratios are cross-machine",
                    b.available_parallelism, b.os, c.available_parallelism, c.os
                );
            }
        }

        let mut ratios: Vec<f64> = Vec::new();
        let mut new_ids = 0usize;
        for rec in &cur.records {
            let Some(b) = base.records.iter().find(|b| b.id == rec.id) else {
                new_ids += 1;
                continue;
            };
            if b.threads != rec.threads || b.mesh != rec.mesh {
                println!(
                    "{name}: note: {} metadata changed (mesh {:?} -> {:?}, \
                     threads {:?} -> {:?}) — comparing anyway",
                    rec.id, b.mesh, rec.mesh, b.threads, rec.threads
                );
            }
            let ratio = rec.median_ns / b.median_ns.max(f64::MIN_POSITIVE);
            if ratio > limit {
                println!(
                    "{name}: warn: {} {:.1}% slower ({:.0} ns -> {:.0} ns)",
                    rec.id,
                    (ratio - 1.0) * 100.0,
                    b.median_ns,
                    rec.median_ns
                );
            }
            ratios.push(ratio);
        }
        let dropped = base
            .records
            .iter()
            .filter(|b| !cur.records.iter().any(|c| c.id == b.id))
            .count();
        if dropped > 0 {
            println!("{name}: note: {dropped} baseline id(s) missing from this run");
        }
        if ratios.is_empty() {
            println!("{name}: warn: no common ids with baseline — nothing gated");
            continue;
        }
        ratios.sort_by(f64::total_cmp);
        let med = median(&ratios);
        let verdict = if med > limit { "REGRESSED" } else { "ok" };
        println!(
            "{name}: {verdict} — median ratio {:.3} over {} ids \
             (threshold {limit:.3}, {new_ids} new)",
            med,
            ratios.len()
        );
        if med > limit {
            regressed = true;
        }
    }
    if hard_error {
        ExitCode::from(2)
    } else if regressed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
