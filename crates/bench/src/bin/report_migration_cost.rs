//! Regenerates the §2.1–2.2 migration cost analysis: congestion-free
//! phases, deterministic stall time, state-transfer flit-hops and energy per
//! migration event, for both chip sizes.
//!
//! Paper reference points: migration is congestion free, deterministic in
//! time, and the rotational migration has the largest energy penalty.

use hotnoc_core::configs::{ChipConfigId, Fidelity};
use hotnoc_core::cosim::CosimParams;
use hotnoc_core::experiment::run_migration_cost;
use hotnoc_core::report;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (fidelity, params) = if quick {
        (Fidelity::Quick, CosimParams::quick())
    } else {
        (Fidelity::Full, CosimParams::default())
    };
    for (id, label) in [(ChipConfigId::A, "4x4 chip"), (ChipConfigId::E, "5x5 chip")] {
        let rows = run_migration_cost(id, fidelity, &params).expect("cost analysis failed");
        println!("Migration cost — {label} (config {id}):");
        println!("{}", report::migration_cost_ascii(&rows));
        let rot = &rows[0];
        let max_other = rows[1..]
            .iter()
            .map(|r| r.energy_uj)
            .fold(f64::MIN, f64::max);
        println!(
            "Rotation energy {:.1} uJ vs best-of-others {:.1} uJ (paper: rotation largest)\n",
            rot.energy_uj, max_other
        );
    }
}
