//! Regenerates the §2.1–2.2 migration cost analysis: congestion-free
//! phases, deterministic stall time, state-transfer flit-hops and energy per
//! migration event, for both chip sizes.
//!
//! Paper reference points: migration is congestion free, deterministic in
//! time, and the rotational migration has the largest energy penalty.
//!
//! A thin wrapper over the built-in `migration-cost` campaign (plan-cost
//! mode: no transient solve). Leaves `CAMPAIGN_migration-cost.json` and a
//! CSV per chip. Exits non-zero on failure.

use hotnoc_core::configs::{ChipConfigId, Fidelity};
use hotnoc_core::report;
use hotnoc_scenario::builtin::builtin;
use hotnoc_scenario::exhibits;
use hotnoc_scenario::runner::{run_campaign, RunnerOptions};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let fidelity = if quick {
        Fidelity::Quick
    } else {
        Fidelity::Full
    };
    let spec = builtin("migration-cost", fidelity).expect("migration-cost is a builtin");
    let run = run_campaign(
        &spec,
        &RunnerOptions {
            progress: true,
            ..RunnerOptions::default()
        },
    )?;
    for (id, label) in [(ChipConfigId::A, "4x4 chip"), (ChipConfigId::E, "5x5 chip")] {
        let rows =
            exhibits::migration_cost_rows(&run.completed, id).map_err(std::io::Error::other)?;
        println!("Migration cost — {label} (config {id}):");
        println!("{}", report::migration_cost_ascii(&rows));
        let rot = &rows[0];
        let max_other = rows[1..]
            .iter()
            .map(|r| r.energy_uj)
            .fold(f64::MIN, f64::max);
        println!(
            "Rotation energy {:.1} uJ vs best-of-others {:.1} uJ (paper: rotation largest)\n",
            rot.energy_uj, max_other
        );
        hotnoc_bench::save(
            &format!("migration_cost_{id}.csv"),
            &report::migration_cost_csv(&rows),
        )?;
    }
    Ok(())
}
