//! Validates `BENCH_*.json` bench reports against the `hotnoc-bench-v1`
//! schema. CI's bench-smoke job runs this over every emitted report and
//! fails the build on the first malformed file.
//!
//! Usage: `check_bench_json <file> [<file> ...]`

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_bench_json <BENCH_*.json> [...]");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                ok = false;
            }
            Ok(text) => match criterion::report::parse_report(&text) {
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    ok = false;
                }
                Ok(records) => {
                    println!("{path}: ok ({} results)", records.len());
                    if records.is_empty() {
                        eprintln!("{path}: INVALID: no results recorded");
                        ok = false;
                    }
                }
            },
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
