//! Regenerates **Table 1** of the paper: the transformation functions in
//! {X, Y} form, and verifies each formula against the implementation on the
//! paper's meshes. The rendered table is also saved to `table1.txt`; a
//! failed write exits non-zero.

use hotnoc_noc::Mesh;
use hotnoc_reconfig::{MigrationScheme, MigrationUnit, OrbitDecomposition};
use std::error::Error;
use std::fmt::Write as _;

fn main() -> Result<(), Box<dyn Error>> {
    let mut out = String::new();
    writeln!(out, "Table 1. Transformation Functions")?;
    writeln!(
        out,
        "{:<16}{:<18}{:<18}",
        "", "New X Coordinate", "New Y Coordinate"
    )?;
    for scheme in [
        MigrationScheme::Rotation,
        MigrationScheme::XMirror,
        MigrationScheme::XTranslation { offset: 1 },
    ] {
        let (x, y) = scheme.table1_row();
        let name = match scheme {
            MigrationScheme::Rotation => "Rotation",
            MigrationScheme::XMirror => "X Mirroring",
            MigrationScheme::XTranslation { .. } => "X Translation",
            _ => unreachable!(),
        };
        writeln!(out, "{name:<16}{x:<18}{y:<18}")?;
    }

    writeln!(
        out,
        "\nVerification on the paper's meshes (group order, fixed points, mean move):"
    )?;
    for side in [4usize, 5] {
        let mesh = Mesh::square(side).expect("valid mesh");
        writeln!(out, "  {side}x{side}:")?;
        for scheme in MigrationScheme::FIGURE1 {
            let orbits = OrbitDecomposition::new(scheme, mesh);
            writeln!(
                out,
                "    {:<12} order {}  fixed points {}  mean move {:.2} hops",
                scheme.to_string(),
                scheme.order(mesh),
                orbits.fixed_points().len(),
                orbits.mean_move_distance(scheme)
            )?;
        }
    }

    // §2.3: "only 3-bit operands are required to address up to 64 PEs".
    let unit = MigrationUnit::new(Mesh::square(8).expect("valid"), MigrationScheme::Rotation);
    writeln!(
        out,
        "\nMigration unit: {} -bit operands address {} PEs (paper: 3-bit operands, up to 64 PEs)",
        unit.operand_bits(),
        64
    )?;

    print!("{out}");
    hotnoc_bench::save("table1.txt", &out)?;
    Ok(())
}
