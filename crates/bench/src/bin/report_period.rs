//! Regenerates the §3 in-text migration-period sweep: periods of 1, 4 and 8
//! LDPC blocks (the paper's 109.3 / 437.2 / 874.4 µs), reporting throughput
//! penalty and peak temperature.
//!
//! Paper reference points: 1 block -> 1.6 % penalty; 4 blocks -> < 0.4 %
//! with peak rise under 0.1 °C; 8 blocks -> < 0.2 % without significant
//! peak impact.

use hotnoc_core::configs::{ChipConfigId, Fidelity};
use hotnoc_core::cosim::CosimParams;
use hotnoc_core::experiment::run_period_sweep;
use hotnoc_core::report;
use hotnoc_reconfig::MigrationScheme;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (fidelity, params) = if quick {
        (Fidelity::Quick, CosimParams::quick())
    } else {
        (Fidelity::Full, CosimParams::default())
    };
    let table = run_period_sweep(
        ChipConfigId::A,
        MigrationScheme::XYShift,
        &[1, 4, 8],
        fidelity,
        &params,
    )
    .expect("period sweep failed");
    println!("{}", report::period_ascii(&table));
    if table.rows.len() == 3 {
        let rise = table.rows[1].peak - table.rows[0].peak;
        println!("Peak rise from 1-block to 4-block period: {rise:.3} C (paper: < 0.1 C)");
        let rise8 = table.rows[2].peak - table.rows[0].peak;
        println!(
            "Peak rise from 1-block to 8-block period: {rise8:.3} C (paper: no significant impact)"
        );
    }
}
