//! Regenerates the §3 in-text migration-period sweep: periods of 1, 4 and 8
//! LDPC blocks (the paper's 109.3 / 437.2 / 874.4 µs), reporting throughput
//! penalty and peak temperature.
//!
//! Paper reference points: 1 block -> 1.6 % penalty; 4 blocks -> < 0.4 %
//! with peak rise under 0.1 °C; 8 blocks -> < 0.2 % without significant
//! peak impact.
//!
//! A thin wrapper over the built-in `period-sweep` campaign: the runs
//! journal to `CAMPAIGN_period-sweep.manifest.jsonl` (killed runs resume)
//! and the machine-readable `CAMPAIGN_period-sweep.json` lands next to
//! `period_sweep.csv`. Exits non-zero on failure.

use hotnoc_core::configs::{ChipConfigId, Fidelity};
use hotnoc_core::report;
use hotnoc_reconfig::MigrationScheme;
use hotnoc_scenario::builtin::builtin;
use hotnoc_scenario::exhibits;
use hotnoc_scenario::runner::{run_campaign, RunnerOptions};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let fidelity = if quick {
        Fidelity::Quick
    } else {
        Fidelity::Full
    };
    let spec = builtin("period-sweep", fidelity).expect("period-sweep is a builtin");
    let run = run_campaign(
        &spec,
        &RunnerOptions {
            progress: true,
            ..RunnerOptions::default()
        },
    )?;
    let table = exhibits::period_table(&run.completed, ChipConfigId::A, MigrationScheme::XYShift)
        .map_err(std::io::Error::other)?;
    println!("{}", report::period_ascii(&table));
    if table.rows.len() == 3 {
        let rise = table.rows[1].peak - table.rows[0].peak;
        println!("Peak rise from 1-block to 4-block period: {rise:.3} C (paper: < 0.1 C)");
        let rise8 = table.rows[2].peak - table.rows[0].peak;
        println!(
            "Peak rise from 1-block to 8-block period: {rise8:.3} C (paper: no significant impact)"
        );
    }
    hotnoc_bench::save("period_sweep.csv", &report::period_csv(&table))?;
    Ok(())
}
